//! The write-ahead-log record format Architecture 3 puts on its SQS
//! queue (§4.3).
//!
//! Records are tagged with a transaction id. A transaction is: one
//! `Begin` carrying the record count, one `Data` pointer to the staged S3
//! object, provenance `Prov` chunks of at most 8 KB, one `Md5`
//! consistency record, and finally `Commit`. The commit daemon assembles
//! transactions from (sampled, unordered) queue deliveries and applies
//! only complete, committed ones.
//!
//! The wire encoding joins escaped fields with the ASCII unit separator;
//! it is trivially reversible and keeps every record well under SQS's
//! limit except for the payload itself (the chunker guarantees that).

use serde::{Deserialize, Serialize};
use sim_sqs::{MAX_BATCH_ENTRIES, MAX_BATCH_PAYLOAD, MAX_MESSAGE_SIZE};

/// One WAL record.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WalRecord {
    /// Transaction start: how many records (data + prov + md5) follow
    /// before the commit.
    Begin {
        /// Transaction id (random per transaction, unique across client
        /// restarts).
        txid: u64,
        /// Records between begin and commit.
        records: u32,
    },
    /// Pointer to the staged data object.
    Data {
        /// Transaction id.
        txid: u64,
        /// S3 key of the temporary object.
        temp_key: String,
        /// Final object name.
        name: String,
        /// Version being persisted.
        version: u32,
        /// Consistency nonce.
        nonce: String,
    },
    /// A chunk of provenance attribute pairs for one item.
    Prov {
        /// Transaction id.
        txid: u64,
        /// SimpleDB item the pairs belong to.
        item_name: String,
        /// Attribute pairs.
        pairs: Vec<(String, String)>,
    },
    /// The `MD5(data ‖ nonce)` consistency record.
    Md5 {
        /// Transaction id.
        txid: u64,
        /// SimpleDB item the hash belongs to.
        item_name: String,
        /// Hex digest.
        md5_hex: String,
        /// Nonce that went into the digest.
        nonce: String,
    },
    /// Transaction end: every record was logged.
    Commit {
        /// Transaction id.
        txid: u64,
    },
}

const SEP: char = '\u{1f}';

fn esc(s: &str) -> String {
    s.replace('%', "%25").replace(SEP, "%1F")
}

fn unesc(s: &str) -> String {
    s.replace("%1F", "\u{1f}").replace("%25", "%")
}

impl WalRecord {
    /// The transaction this record belongs to.
    pub fn txid(&self) -> u64 {
        match self {
            WalRecord::Begin { txid, .. }
            | WalRecord::Data { txid, .. }
            | WalRecord::Prov { txid, .. }
            | WalRecord::Md5 { txid, .. }
            | WalRecord::Commit { txid } => *txid,
        }
    }

    /// `true` for the records counted by `Begin::records`.
    pub fn is_payload(&self) -> bool {
        matches!(
            self,
            WalRecord::Data { .. } | WalRecord::Prov { .. } | WalRecord::Md5 { .. }
        )
    }

    /// Serialises to the queue wire form.
    pub fn encode(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        match self {
            WalRecord::Begin { txid, records } => {
                fields.extend(["B".into(), txid.to_string(), records.to_string()]);
            }
            WalRecord::Data {
                txid,
                temp_key,
                name,
                version,
                nonce,
            } => {
                fields.extend([
                    "D".into(),
                    txid.to_string(),
                    esc(temp_key),
                    esc(name),
                    version.to_string(),
                    esc(nonce),
                ]);
            }
            WalRecord::Prov {
                txid,
                item_name,
                pairs,
            } => {
                fields.extend(["P".into(), txid.to_string(), esc(item_name)]);
                for (k, v) in pairs {
                    fields.push(esc(k));
                    fields.push(esc(v));
                }
            }
            WalRecord::Md5 {
                txid,
                item_name,
                md5_hex,
                nonce,
            } => {
                fields.extend([
                    "M".into(),
                    txid.to_string(),
                    esc(item_name),
                    esc(md5_hex),
                    esc(nonce),
                ]);
            }
            WalRecord::Commit { txid } => {
                fields.extend(["C".into(), txid.to_string()]);
            }
        }
        fields.join(&SEP.to_string())
    }

    /// Parses the wire form; `None` for anything malformed (foreign
    /// messages on the queue are skipped, not fatal).
    pub fn decode(s: &str) -> Option<WalRecord> {
        let fields: Vec<&str> = s.split(SEP).collect();
        let txid: u64 = fields.get(1)?.parse().ok()?;
        match *fields.first()? {
            "B" => {
                let records: u32 = fields.get(2)?.parse().ok()?;
                (fields.len() == 3).then_some(WalRecord::Begin { txid, records })
            }
            "D" => {
                if fields.len() != 6 {
                    return None;
                }
                Some(WalRecord::Data {
                    txid,
                    temp_key: unesc(fields[2]),
                    name: unesc(fields[3]),
                    version: fields[4].parse().ok()?,
                    nonce: unesc(fields[5]),
                })
            }
            "P" => {
                if fields.len() < 3 || !(fields.len() - 3).is_multiple_of(2) {
                    return None;
                }
                let item_name = unesc(fields[2]);
                let pairs = fields[3..]
                    .chunks_exact(2)
                    .map(|c| (unesc(c[0]), unesc(c[1])))
                    .collect();
                Some(WalRecord::Prov {
                    txid,
                    item_name,
                    pairs,
                })
            }
            "M" => {
                if fields.len() != 5 {
                    return None;
                }
                Some(WalRecord::Md5 {
                    txid,
                    item_name: unesc(fields[2]),
                    md5_hex: unesc(fields[3]),
                    nonce: unesc(fields[4]),
                })
            }
            "C" => (fields.len() == 2).then_some(WalRecord::Commit { txid }),
            _ => None,
        }
    }
}

/// Splits attribute pairs into `Prov` records whose encoded form fits in
/// an SQS message ("group the provenance records into chunks of 8KB",
/// §4.3). Oversized single pairs must have been pointered beforehand —
/// the overflow rule keeps values ≤ 1 KB, so any pair fits.
pub fn chunk_pairs(txid: u64, item_name: &str, pairs: &[(String, String)]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut current: Vec<(String, String)> = Vec::new();
    for pair in pairs {
        current.push(pair.clone());
        let candidate = WalRecord::Prov {
            txid,
            item_name: item_name.to_string(),
            pairs: current.clone(),
        };
        if candidate.encode().len() > MAX_MESSAGE_SIZE && current.len() > 1 {
            let overflowed = current.pop().expect("non-empty");
            out.push(WalRecord::Prov {
                txid,
                item_name: item_name.to_string(),
                pairs: std::mem::take(&mut current),
            });
            current.push(overflowed);
        }
    }
    if !current.is_empty() {
        out.push(WalRecord::Prov {
            txid,
            item_name: item_name.to_string(),
            pairs: current,
        });
    }
    out
}

/// Packs already-encoded WAL records into `SendMessageBatch`-shaped
/// groups, preserving order and respecting **both** batch limits: at
/// most [`MAX_BATCH_ENTRIES`] entries and at most [`MAX_BATCH_PAYLOAD`]
/// summed body bytes per group. Greedy first-fit in order — order is
/// load-bearing for the WAL (a transaction's `Commit` must never travel
/// before its payload), so records are never reordered to pack tighter.
///
/// Callers of [`chunk_pairs`] feed its output (plus the framing records)
/// through here instead of one `SendMessage` per record; each returned
/// group is exactly one billable request.
pub fn pack_wal_batches(records: &[WalRecord]) -> Vec<Vec<String>> {
    let mut batches: Vec<Vec<String>> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let mut current_bytes = 0usize;
    for record in records {
        let encoded = record.encode();
        debug_assert!(
            encoded.len() <= MAX_MESSAGE_SIZE,
            "chunk_pairs guarantees every record fits one message"
        );
        if !current.is_empty()
            && (current.len() == MAX_BATCH_ENTRIES
                || current_bytes + encoded.len() > MAX_BATCH_PAYLOAD)
        {
            batches.push(std::mem::take(&mut current));
            current_bytes = 0;
        }
        current_bytes += encoded.len();
        current.push(encoded);
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: WalRecord) {
        let encoded = record.encode();
        assert!(
            encoded.len() <= MAX_MESSAGE_SIZE,
            "record exceeds SQS limit"
        );
        assert_eq!(WalRecord::decode(&encoded), Some(record));
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(WalRecord::Begin {
            txid: 7,
            records: 3,
        });
        round_trip(WalRecord::Data {
            txid: 7,
            temp_key: "tmp/c/7/data".into(),
            name: "results/out.csv".into(),
            version: 2,
            nonce: "2".into(),
        });
        round_trip(WalRecord::Prov {
            txid: 7,
            item_name: "results/out.csv 2".into(),
            pairs: vec![
                ("input".into(), "bar:2".into()),
                ("type".into(), "file".into()),
            ],
        });
        round_trip(WalRecord::Md5 {
            txid: 7,
            item_name: "results/out.csv 2".into(),
            md5_hex: "d41d8cd98f00b204e9800998ecf8427e".into(),
            nonce: "2".into(),
        });
        round_trip(WalRecord::Commit { txid: 7 });
    }

    #[test]
    fn separator_and_percent_in_values_survive() {
        round_trip(WalRecord::Prov {
            txid: 1,
            item_name: "weird\u{1f}name 1".into(),
            pairs: vec![("env".into(), "A=100%\u{1f}B=2".into())],
        });
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(WalRecord::decode(""), None);
        assert_eq!(WalRecord::decode("X\u{1f}1"), None);
        assert_eq!(WalRecord::decode("B\u{1f}notanumber\u{1f}3"), None);
        assert_eq!(WalRecord::decode("B\u{1f}1"), None); // missing count
        assert_eq!(WalRecord::decode("D\u{1f}1\u{1f}only-three-fields"), None);
        assert_eq!(
            WalRecord::decode("P\u{1f}1\u{1f}item\u{1f}dangling-key"),
            None
        );
        assert_eq!(WalRecord::decode("arbitrary user message"), None);
    }

    #[test]
    fn payload_classification() {
        assert!(!WalRecord::Begin {
            txid: 1,
            records: 0
        }
        .is_payload());
        assert!(!WalRecord::Commit { txid: 1 }.is_payload());
        assert!(WalRecord::Md5 {
            txid: 1,
            item_name: "i".into(),
            md5_hex: String::new(),
            nonce: String::new()
        }
        .is_payload());
    }

    #[test]
    fn chunking_respects_message_limit() {
        let pairs: Vec<(String, String)> = (0..200)
            .map(|i| (format!("env{i}"), "v".repeat(500)))
            .collect();
        let chunks = chunk_pairs(9, "item 1", &pairs);
        assert!(chunks.len() > 1, "200 × ~500B pairs cannot fit one message");
        let mut reassembled = Vec::new();
        for c in &chunks {
            assert!(c.encode().len() <= MAX_MESSAGE_SIZE);
            match c {
                WalRecord::Prov {
                    item_name, pairs, ..
                } => {
                    assert_eq!(item_name, "item 1");
                    reassembled.extend(pairs.clone());
                }
                other => panic!("unexpected record {other:?}"),
            }
        }
        assert_eq!(reassembled, pairs, "no pair lost or reordered");
    }

    #[test]
    fn small_sets_fit_one_chunk() {
        let pairs = vec![("type".to_string(), "file".to_string())];
        let chunks = chunk_pairs(1, "i 1", &pairs);
        assert_eq!(chunks.len(), 1);
    }

    /// A `Prov` record whose encoded form is exactly `len` bytes.
    fn record_of_len(txid: u64, len: usize) -> WalRecord {
        let skeleton = WalRecord::Prov {
            txid,
            item_name: "i".into(),
            pairs: vec![("k".into(), String::new())],
        };
        let pad = len
            .checked_sub(skeleton.encode().len())
            .expect("len must cover the framing");
        let record = WalRecord::Prov {
            txid,
            item_name: "i".into(),
            pairs: vec![("k".into(), "v".repeat(pad))],
        };
        assert_eq!(record.encode().len(), len);
        record
    }

    #[test]
    fn pack_respects_entry_limit() {
        let records: Vec<WalRecord> = (0..25).map(|i| WalRecord::Commit { txid: i }).collect();
        let batches = pack_wal_batches(&records);
        assert_eq!(
            batches.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![10, 10, 5],
            "tiny records pack to the 10-entry limit"
        );
        // Order is preserved end to end.
        let flat: Vec<String> = batches.into_iter().flatten().collect();
        let want: Vec<String> = records.iter().map(WalRecord::encode).collect();
        assert_eq!(flat, want);
    }

    #[test]
    fn pack_respects_payload_limit_at_the_boundary() {
        // Eight maximal 8 KB records sum to exactly MAX_BATCH_PAYLOAD:
        // filling the limit to the byte is legal, so they ride one
        // batch, and a ninth (tiny) record must open the next one even
        // though the entry count (8 < 10) would admit it.
        assert_eq!(8 * MAX_MESSAGE_SIZE, MAX_BATCH_PAYLOAD);
        let mut records: Vec<WalRecord> =
            (0..8).map(|i| record_of_len(i, MAX_MESSAGE_SIZE)).collect();
        records.push(record_of_len(8, 100));
        let batches = pack_wal_batches(&records);
        assert_eq!(batches.iter().map(Vec::len).collect::<Vec<_>>(), vec![8, 1]);
        assert_eq!(
            batches[0].iter().map(String::len).sum::<usize>(),
            MAX_BATCH_PAYLOAD,
            "a batch may fill the payload limit exactly"
        );
        // Nudge the sum one record-width past the limit (a small record
        // up front): the eighth maximal record no longer fits and the
        // payload bound — not the 10-entry bound — forces the split.
        let mut over: Vec<WalRecord> = vec![record_of_len(100, 100)];
        over.extend((0..8).map(|i| record_of_len(i, MAX_MESSAGE_SIZE)));
        let batches = pack_wal_batches(&over);
        assert_eq!(batches.iter().map(Vec::len).collect::<Vec<_>>(), vec![8, 1]);
        assert!(batches[0].iter().map(String::len).sum::<usize>() <= MAX_BATCH_PAYLOAD);
    }

    #[test]
    fn pack_both_limits_bind_on_maximal_messages() {
        // Ten maximal 8 KB records do NOT fit one batch: the 64 KB
        // payload limit binds first, at eight entries.
        let records: Vec<WalRecord> = (0..10)
            .map(|i| record_of_len(i, MAX_MESSAGE_SIZE))
            .collect();
        let batches = pack_wal_batches(&records);
        assert_eq!(batches.iter().map(Vec::len).collect::<Vec<_>>(), vec![8, 2]);
        for batch in &batches {
            assert!(batch.len() <= MAX_BATCH_ENTRIES);
            assert!(batch.iter().map(String::len).sum::<usize>() <= MAX_BATCH_PAYLOAD);
        }
    }

    #[test]
    fn pack_empty_and_single() {
        assert!(pack_wal_batches(&[]).is_empty());
        let one = [WalRecord::Commit { txid: 1 }];
        let batches = pack_wal_batches(&one);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0], vec![one[0].encode()]);
    }
}

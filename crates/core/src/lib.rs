//! # provenance-cloud — the three architectures of *Making a Cloud
//! Provenance-Aware* (TaPP '09)
//!
//! This crate is the paper's primary contribution, rebuilt as a library:
//! a Provenance-Aware Storage System (PASS, see the [`pass`] crate)
//! extended to use Amazon Web Services as its backend, with three
//! alternative designs for keeping data and provenance together:
//!
//! | Architecture | Paper | How |
//! |---|---|---|
//! | [`StandaloneS3`] | §4.1 | provenance rides as S3 metadata on the data PUT |
//! | [`S3SimpleDb`] | §4.2 | data in S3, indexed provenance in SimpleDB, `MD5(data ‖ nonce)` for consistency |
//! | [`S3SimpleDbSqs`] | §4.3 | like §4.2 plus an SQS write-ahead log and commit daemon for atomicity |
//!
//! All three implement [`ProvenanceStore`]. The paper's evaluation is
//! reproduced by:
//!
//! * [`properties`] — machine-checked versions of the §3 properties
//!   (read correctness = atomicity + consistency, causal ordering,
//!   efficient query), regenerating **Table 1**;
//! * [`ProvQuery`] and the two query engines — the Q1/Q2/Q3 workloads
//!   behind **Table 3**;
//! * the metering built into the simulated services — the op/byte
//!   accounting behind **Table 2**.
//!
//! # Examples
//!
//! ```
//! use pass::FileFlush;
//! use provenance_cloud::{ProvQuery, ProvenanceStore, S3SimpleDbSqs};
//! use simworld::{Blob, SimWorld};
//!
//! let world = SimWorld::new(42);
//! let mut store = S3SimpleDbSqs::new(&world, "lab-1");
//!
//! // Persist a data set and its derivation.
//! let input = FileFlush::builder("census/raw.csv")
//!     .data(Blob::synthetic(1, 64 * 1024))
//!     .build();
//! let output = FileFlush::builder("census/trends.csv")
//!     .data(Blob::synthetic(2, 8 * 1024))
//!     .record("input", "census/raw.csv:1")
//!     .build();
//! store.persist(&input)?;
//! store.persist(&output)?;
//! store.run_daemons_until_idle()?;
//!
//! // Read with verified consistency, then query ancestry.
//! let read = store.read("census/trends.csv")?;
//! assert!(read.consistent());
//! # Ok::<(), provenance_cloud::CloudError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod arch1;
mod arch2;
mod arch3;
mod closure;
mod error;
mod graph;
pub mod layout;
mod pipeline;
mod prefetch;
pub mod properties;
mod query;
mod readpath;
mod retry;
mod serialize;
mod serve;
mod store;
mod wal;

pub use arch1::{StandaloneS3, A1_BEFORE_DATA_PUT, A1_BEFORE_OVERFLOW_PUT};
pub use arch2::{
    Arch2Config, S3SimpleDb, A2_BEFORE_DATA_PUT, A2_BEFORE_INDEX_PUT, A2_BEFORE_OVERFLOW_PUT,
    A2_BEFORE_PROV_PUT, A2_MID_INDEX_PUT, A2_MID_PROV_PUT,
};
pub use arch3::{
    Arch3Config, CommitDaemon, DaemonDepth, DaemonProgress, S3SimpleDbSqs, A3_AFTER_TEMP_PUT,
    A3_BEFORE_BEGIN, A3_BEFORE_COMMIT, A3_BEFORE_TEMP_PUT, A3_MID_PROV_LOG, D3_AFTER_COPY,
    D3_BEFORE_COPY, D3_BEFORE_INDEX_PUT, D3_BEFORE_MSG_DELETE, D3_BEFORE_TMP_DELETE,
    D3_MID_INDEX_PUT, D3_MID_PUTATTRS,
};
pub use closure::{ClosureIndex, ClosureMode};
pub use error::{CloudError, Result};
pub use graph::{GraphDiff, NodeDiff, ProvGraph};
pub use pipeline::{
    drive_pipelined, drive_pipelined_adaptive, persist_groups_adaptive, PipelineReport,
    PIPE_AFTER_GROUP_ISSUE, PIPE_AFTER_TIMER_FIRE, PIPE_BEFORE_DRAIN,
};
pub use prefetch::{record_value, PrefetchPolicy, PrefetchStats, PrefetchingReader};
pub use properties::{
    check_atomicity, check_causal_ordering, check_consistency, check_efficient_query,
    full_property_table, property_matrix, ArchKind, AtomicityReport, PropertyMatrix,
};
pub use query::{ProvQuery, QueryAnswer, QueryItem, S3QueryEngine, SimpleDbQueryEngine};
pub use retry::{with_throttle_retry, RetryPolicy};
pub use serialize::{
    decode_attributes, decode_metadata, encode_metadata, encode_records, pack_attr_batches,
    read_nonce, read_version, to_simpledb_attributes, EncodedProvenance,
};
pub use serve::{store_fingerprint, ServeHandle, ServeParts, ServeStats, Serveable};
pub use store::{ProvenanceStore, ReadOutcome, ReadStatus, RecoveryReport};
pub use wal::{chunk_pairs, pack_wal_batches, WalRecord};

#[cfg(test)]
mod tests;

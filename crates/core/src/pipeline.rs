//! The pipelined persist client: a timer-driven background flush
//! daemon feeding batches into an open request pipeline.
//!
//! The paper's protocols assume provenance reaches the cloud
//! *asynchronously* from the client's critical path. This module is
//! that client: a [`pass::FlushDaemon`] coalesces `close()` flushes
//! under a [`pass::FlushPolicy`] (count, bytes, **and** a `max_age`
//! deadline registered as a timer event in the world's deterministic
//! scheduler), and every due group issues through
//! [`ProvenanceStore::persist_batch`] while the pipeline keeps up to
//! `max_in_flight` requests per service outstanding — batches overlap
//! in flight instead of draining synchronously in the submitting
//! client.
//!
//! Crash sites cover the daemon's three step boundaries: after a timer
//! fires but before its group issues, after a group's requests are
//! issued, and after the last issue but before the in-flight tail
//! completes. A crash anywhere loses at most the un-issued buffer (and
//! on Architecture 3 any half-issued group is a commit-less suffix the
//! commit daemon ignores) — the same durability story as the
//! synchronous paths, now with overlap.

use pass::{FileFlush, FlushDaemon, FlushPolicy};
use simworld::{AdaptiveDepth, CrashSite, SimDuration, SimWorld};

use crate::error::Result;
use crate::store::ProvenanceStore;

/// Crash site: a flush deadline fired, but its group has not issued.
pub const PIPE_AFTER_TIMER_FIRE: CrashSite = CrashSite::new("pipeline.after_timer_fire");

/// Crash site: a group's requests are issued (possibly still in
/// flight); the next group has not started.
pub const PIPE_AFTER_GROUP_ISSUE: CrashSite = CrashSite::new("pipeline.after_group_issue");

/// Crash site: every group is issued, but the in-flight tail has not
/// completed (the client dies with requests on the wire).
pub const PIPE_BEFORE_DRAIN: CrashSite = CrashSite::new("pipeline.before_drain");

/// What a pipelined drive accomplished.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Groups issued (threshold, timer, and tail drains).
    pub groups_issued: u64,
    /// Groups drained by the age deadline rather than a size threshold.
    pub timer_drains: u64,
    /// Requests issued while the pipeline was open.
    pub requests: u64,
    /// Times the client blocked on a full channel set (backpressure).
    pub stalls: u64,
    /// Largest number of requests simultaneously in flight.
    pub peak_in_flight: usize,
    /// Virtual time from first submit to last completion.
    pub elapsed: SimDuration,
}

/// Drives `flushes` through a timer-driven [`FlushDaemon`] into
/// `store`, with up to `max_in_flight` requests per service overlapping
/// in flight. `inter_flush_gap` models the client's think time between
/// `close()` calls — with a nonzero gap and a `max_age` deadline, slow
/// producers see their small groups drained by the timer instead of
/// waiting for the count threshold.
///
/// The final store state is identical to feeding the same groups
/// through the synchronous batch path; only the completion accounting
/// overlaps.
///
/// # Errors
///
/// Service errors, or [`crate::CloudError::Crashed`] when a crash site
/// fires — issued requests stay issued (they were on the wire), the
/// un-issued buffer is lost with the client's memory.
pub fn drive_pipelined(
    world: &SimWorld,
    store: &mut dyn ProvenanceStore,
    flushes: &[FileFlush],
    policy: FlushPolicy,
    max_in_flight: usize,
    inter_flush_gap: SimDuration,
) -> Result<PipelineReport> {
    drive_inner(
        world,
        store,
        flushes,
        policy,
        max_in_flight,
        inter_flush_gap,
        |_| {},
    )
}

/// [`drive_pipelined`] with the in-flight depth steered by an AIMD
/// [`AdaptiveDepth`] controller instead of a fixed knob: the region
/// opens at `controller.depth()` and, after every issued group, the
/// controller observes the region's cumulative stall evidence
/// ([`SimWorld::pipeline_stats`]) and resizes the open window in place
/// ([`SimWorld::set_pipeline_depth`]). The controller is borrowed so a
/// caller can read the converged depth — and reuse the learned state on
/// a later drive.
///
/// # Errors
///
/// As [`drive_pipelined`].
pub fn drive_pipelined_adaptive(
    world: &SimWorld,
    store: &mut dyn ProvenanceStore,
    flushes: &[FileFlush],
    policy: FlushPolicy,
    controller: &mut AdaptiveDepth,
    inter_flush_gap: SimDuration,
) -> Result<PipelineReport> {
    let start = controller.depth();
    let report = drive_inner(world, store, flushes, policy, start, inter_flush_gap, |w| {
        if let Some(stats) = w.pipeline_stats() {
            controller.observe(&stats);
            w.set_pipeline_depth(controller.depth());
        }
    });
    controller.region_complete();
    report
}

/// Persists pre-formed `groups` through one pipelined region with the
/// depth steered by `controller` — the group-list counterpart of
/// [`drive_pipelined_adaptive`], matching the shape of
/// [`ProvenanceStore::persist_pipelined`].
///
/// # Errors
///
/// Service errors, or [`crate::CloudError::Crashed`] when a client
/// crash site fires; issued requests stay on the wire either way.
pub fn persist_groups_adaptive(
    world: &SimWorld,
    store: &mut dyn ProvenanceStore,
    groups: &[Vec<FileFlush>],
    controller: &mut AdaptiveDepth,
) -> Result<()> {
    world.begin_pipeline(controller.depth());
    let result = groups.iter().try_for_each(|g| {
        store.persist_batch(g)?;
        if let Some(stats) = world.pipeline_stats() {
            controller.observe(&stats);
            world.set_pipeline_depth(controller.depth());
        }
        Ok(())
    });
    // Drain even when a crash fired: issued requests are on the wire.
    world.drain_pipeline();
    controller.region_complete();
    result
}

fn drive_inner(
    world: &SimWorld,
    store: &mut dyn ProvenanceStore,
    flushes: &[FileFlush],
    policy: FlushPolicy,
    initial_depth: usize,
    inter_flush_gap: SimDuration,
    mut after_group: impl FnMut(&SimWorld),
) -> Result<PipelineReport> {
    let t0 = world.now();
    let mut daemon = FlushDaemon::new(world, policy);
    let mut groups_issued = 0u64;
    world.begin_pipeline(initial_depth);
    let result = (|| -> Result<()> {
        for flush in flushes {
            if inter_flush_gap > SimDuration::ZERO {
                world.advance(inter_flush_gap);
            }
            if let Some(group) = daemon.poll() {
                // The deadline passed between closes: the background
                // daemon wakes and drains the aged group.
                world.crash_point(PIPE_AFTER_TIMER_FIRE)?;
                store.persist_batch(&group)?;
                groups_issued += 1;
                after_group(world);
                world.crash_point(PIPE_AFTER_GROUP_ISSUE)?;
            }
            for group in daemon.submit(flush.clone()) {
                store.persist_batch(&group)?;
                groups_issued += 1;
                after_group(world);
                world.crash_point(PIPE_AFTER_GROUP_ISSUE)?;
            }
        }
        let tail = daemon.drain();
        if !tail.is_empty() {
            store.persist_batch(&tail)?;
            groups_issued += 1;
            after_group(world);
        }
        world.crash_point(PIPE_BEFORE_DRAIN)?;
        Ok(())
    })();
    // Drain even when a crash fired: issued requests are on the wire
    // regardless of the client dying, and the world's pipeline must
    // close either way.
    let stats = world.drain_pipeline();
    result?;
    Ok(PipelineReport {
        groups_issued,
        timer_drains: daemon.timer_drains(),
        requests: stats.requests,
        stalls: stats.stalls,
        peak_in_flight: stats.peak_in_flight,
        elapsed: world.now() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch2::S3SimpleDb;
    use crate::store::ProvenanceStore;
    use simworld::Blob;

    fn flushes(n: usize) -> Vec<FileFlush> {
        (0..n)
            .map(|i| {
                FileFlush::builder(format!("f{i:03}"))
                    .data(Blob::synthetic(i as u64, 512))
                    .build()
            })
            .collect()
    }

    #[test]
    fn fast_producer_drains_on_the_count_threshold() {
        let world = SimWorld::counting();
        let mut store = S3SimpleDb::new(&world);
        let report = drive_pipelined(
            &world,
            &mut store,
            &flushes(20),
            FlushPolicy::every(5),
            4,
            SimDuration::ZERO,
        )
        .unwrap();
        assert_eq!(report.groups_issued, 4);
        assert_eq!(report.timer_drains, 0);
        assert!(report.requests > 0);
        for i in 0..20 {
            assert!(store.read(&format!("f{i:03}")).unwrap().consistent());
        }
    }

    #[test]
    fn slow_producer_is_drained_by_the_timer() {
        let world = SimWorld::counting();
        let mut store = S3SimpleDb::new(&world);
        // Think time (200 ms) × 3 pending crosses the 500 ms deadline
        // long before the 100-flush count threshold.
        let policy = FlushPolicy::new(100, u64::MAX).with_max_age(SimDuration::from_millis(500));
        let report = drive_pipelined(
            &world,
            &mut store,
            &flushes(12),
            policy,
            4,
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(report.timer_drains > 0, "{report:?}");
        assert!(
            report.groups_issued > 12 / 100,
            "groups must come from deadlines, not the count threshold: {report:?}"
        );
        for i in 0..12 {
            assert!(store.read(&format!("f{i:03}")).unwrap().consistent());
        }
    }

    #[test]
    fn adaptive_drive_matches_fixed_state_and_raises_the_depth() {
        let fixed_world = SimWorld::new(2009);
        let mut fixed_store = S3SimpleDb::new(&fixed_world);
        drive_pipelined(
            &fixed_world,
            &mut fixed_store,
            &flushes(40),
            FlushPolicy::every(5),
            8,
            SimDuration::ZERO,
        )
        .unwrap();

        let world = SimWorld::new(2009);
        let mut store = S3SimpleDb::new(&world);
        let mut ctl = AdaptiveDepth::with_bounds(1, 1, 32);
        let report = drive_pipelined_adaptive(
            &world,
            &mut store,
            &flushes(40),
            FlushPolicy::every(5),
            &mut ctl,
            SimDuration::ZERO,
        )
        .unwrap();
        assert!(
            ctl.depth() > 1,
            "stalled windows must have grown the depth: {}",
            ctl.depth()
        );
        assert_eq!(report.groups_issued, 8);
        for i in 0..40 {
            let name = format!("f{i:03}");
            assert!(store.read(&name).unwrap().consistent());
            assert!(fixed_store.read(&name).unwrap().consistent());
        }
    }

    #[test]
    fn persist_groups_adaptive_lands_every_group() {
        let world = SimWorld::new(7);
        let mut store = S3SimpleDb::new(&world);
        let all = flushes(30);
        let groups: Vec<Vec<FileFlush>> = all.chunks(6).map(<[FileFlush]>::to_vec).collect();
        let mut ctl = AdaptiveDepth::new();
        persist_groups_adaptive(&world, &mut store, &groups, &mut ctl).unwrap();
        assert!(world.pipeline_depth().is_none(), "the region must close");
        for i in 0..30 {
            assert!(store.read(&format!("f{i:03}")).unwrap().consistent());
        }
    }

    #[test]
    fn report_measures_overlap_on_a_priced_world() {
        let world = SimWorld::new(2009);
        let mut store = S3SimpleDb::new(&world);
        let report = drive_pipelined(
            &world,
            &mut store,
            &flushes(20),
            FlushPolicy::every(5),
            4,
            SimDuration::ZERO,
        )
        .unwrap();
        assert!(report.peak_in_flight > 1, "{report:?}");
        assert!(report.elapsed > SimDuration::ZERO);
    }
}

//! Encoding provenance records onto the two wire formats — S3 object
//! metadata (Architecture 1) and SimpleDB attributes (Architectures 2/3)
//! — including the overflow rules both impose.

use pass::{ObjectRef, ProvenanceRecord};
use sim_s3::{Metadata, METADATA_LIMIT};
use sim_simpledb::ReplaceableAttribute;
use simworld::Blob;

use crate::error::{CloudError, Result};
use crate::layout::{
    overflow_key, parse_pointer, pointer, ATTR_MD5, ATTR_NONCE, META_NONCE, META_VERSION,
    OVERFLOW_THRESHOLD,
};

/// Provenance serialised for the wire: attribute pairs (with oversized
/// values replaced by pointers) plus the overflow objects that must be
/// stored for the pointers to resolve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EncodedProvenance {
    /// `(attribute name, value-or-pointer)` in record order.
    pub pairs: Vec<(String, String)>,
    /// `(s3 key, content)` of overflow objects referenced by pointers.
    pub overflows: Vec<(String, Blob)>,
}

impl EncodedProvenance {
    /// Total bytes of the attribute pairs.
    pub fn pair_bytes(&self) -> u64 {
        self.pairs
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }
}

/// Serialises records, spilling values above [`OVERFLOW_THRESHOLD`]
/// into overflow objects (the §4.2 rule, also applied by Architecture 1
/// per §5).
pub fn encode_records(object: &ObjectRef, records: &[ProvenanceRecord]) -> EncodedProvenance {
    let mut out = EncodedProvenance::default();
    for (i, record) in records.iter().enumerate() {
        let (name, value) = record.to_pair();
        if value.len() > OVERFLOW_THRESHOLD {
            let key = overflow_key(object, i);
            out.pairs.push((name, pointer(&key)));
            out.overflows.push((key, Blob::from(value)));
        } else {
            out.pairs.push((name, value));
        }
    }
    out
}

/// Metadata key pointing at the continuation object, when one exists.
const META_MORE: &str = "pmore";

/// S3 key of an object version's continuation object.
fn continuation_key(object: &ObjectRef) -> String {
    format!("{}{}/more", crate::layout::PROV_PREFIX, object.item_name())
}

fn esc(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\u{1f}', "%1F")
        .replace('\u{1e}', "%1E")
}

fn unesc(s: &str) -> String {
    s.replace("%1E", "\u{1e}")
        .replace("%1F", "\u{1f}")
        .replace("%25", "%")
}

/// Lays encoded pairs into S3 user metadata for Architecture 1.
///
/// Keys are `p{i}-{attr}` (the index keeps duplicate attribute names —
/// multiple `input` records — distinct in the metadata map, and
/// preserves record order). `version` is stored under its own key.
/// Whatever does not fit under the 2 KB cap is spilled into a single
/// *continuation object* referenced by a `pmore` pointer — the §4.1
/// workaround of "storing provenance overflowing the 2KB limit in
/// separate S3 objects", which is exactly what makes this
/// architecture's query story painful.
pub fn encode_metadata(
    object: &ObjectRef,
    encoded: EncodedProvenance,
) -> (Metadata, Vec<(String, Blob)>) {
    let mut overflows = encoded.overflows;

    // Fast path: everything fits inline.
    let mut meta = Metadata::new();
    meta.insert(META_VERSION, object.version.to_string());
    for (i, (name, value)) in encoded.pairs.iter().enumerate() {
        meta.insert(format!("p{i}-{name}"), value.clone());
    }
    if meta.byte_size() <= METADATA_LIMIT {
        return (meta, overflows);
    }

    // Slow path: keep a prefix of the records inline, spill the rest
    // into one continuation object.
    let key = continuation_key(object);
    let mut meta = Metadata::new();
    meta.insert(META_VERSION, object.version.to_string());
    meta.insert(META_MORE, pointer(&key));
    let mut inline_budget = METADATA_LIMIT.saturating_sub(meta.byte_size());
    let mut spilled: Vec<String> = Vec::new();
    for (i, (name, value)) in encoded.pairs.iter().enumerate() {
        let meta_key = format!("p{i}-{name}");
        let cost = (meta_key.len() + value.len()) as u64;
        if spilled.is_empty() && cost <= inline_budget {
            inline_budget -= cost;
            meta.insert(meta_key, value.clone());
        } else {
            spilled.push(format!("{i}\u{1f}{}\u{1f}{}", esc(name), esc(value)));
        }
    }
    overflows.push((key, Blob::from(spilled.join("\u{1e}"))));
    debug_assert!(meta.byte_size() <= METADATA_LIMIT);
    (meta, overflows)
}

/// Reads provenance pairs back out of Architecture 1 metadata, in record
/// order. Pointer values are resolved through `fetch` (an S3 GET).
///
/// # Errors
///
/// Propagates `fetch` failures; [`CloudError::Corrupt`] for malformed
/// keys is *not* raised — unknown metadata keys are simply skipped, so
/// service-level keys (`version`, `nonce`) coexist with provenance.
pub fn decode_metadata(
    metadata: &Metadata,
    mut fetch: impl FnMut(&str) -> Result<String>,
) -> Result<Vec<ProvenanceRecord>> {
    let mut indexed: Vec<(usize, String, String)> = Vec::new();
    for (key, value) in metadata.iter() {
        let Some(rest) = key.strip_prefix('p') else {
            continue;
        };
        let Some((idx, attr)) = rest.split_once('-') else {
            continue;
        };
        let Ok(idx) = idx.parse::<usize>() else {
            continue;
        };
        indexed.push((idx, attr.to_string(), value.to_string()));
    }
    if let Some(more) = metadata.get(META_MORE) {
        let key = parse_pointer(more).ok_or_else(|| CloudError::Corrupt {
            message: "malformed continuation pointer".into(),
        })?;
        let body = fetch(key)?;
        for entry in body.split('\u{1e}').filter(|e| !e.is_empty()) {
            let mut fields = entry.splitn(3, '\u{1f}');
            let (idx, name, value) = (fields.next(), fields.next(), fields.next());
            match (idx.and_then(|i| i.parse::<usize>().ok()), name, value) {
                (Some(idx), Some(name), Some(value)) => {
                    indexed.push((idx, unesc(name), unesc(value)));
                }
                _ => {
                    return Err(CloudError::Corrupt {
                        message: format!("malformed continuation entry {entry:?}"),
                    })
                }
            }
        }
    }
    indexed.sort_by_key(|(i, _, _)| *i);
    let mut records = Vec::with_capacity(indexed.len());
    for (_, attr, value) in indexed {
        let resolved = match parse_pointer(&value) {
            Some(key) => fetch(key)?,
            None => value.clone(),
        };
        records.push(ProvenanceRecord::from_pair(&attr, &resolved));
    }
    Ok(records)
}

/// Converts encoded pairs into SimpleDB attributes for one item
/// (Architectures 2/3). Multi-valued set semantics make duplicates
/// harmless, so `replace` is false throughout — which is also what keeps
/// the commit daemon's replays idempotent.
pub fn to_simpledb_attributes(encoded: &EncodedProvenance) -> Vec<ReplaceableAttribute> {
    encoded
        .pairs
        .iter()
        .map(|(name, value)| ReplaceableAttribute::add(name.clone(), value.clone()))
        .collect()
}

/// The attribute that points at a SimpleDB item's continuation object.
pub const ATTR_MORE: &str = "more";

/// Reserve for the service attributes (`md5`, `nonce`, `more`).
const ITEM_ATTR_RESERVE: usize = 3;

/// Caps an item's provenance pairs at SimpleDB's 256-pair limit: the
/// overflowing tail is packed into one continuation object and replaced
/// by a single `more` pointer attribute. Massive fan-in (a linker
/// reading thousands of objects) would otherwise be unstorable — the
/// trade-off is that spilled `input` records are invisible to SimpleDB's
/// index, exactly as they would be on the real service.
pub fn fit_item_pairs(
    object: &ObjectRef,
    mut pairs: Vec<(String, String)>,
) -> (Vec<(String, String)>, Option<(String, Blob)>) {
    let max_inline = sim_simpledb::MAX_PAIRS_PER_ITEM - ITEM_ATTR_RESERVE;
    if pairs.len() <= max_inline {
        return (pairs, None);
    }
    let tail: Vec<(String, String)> = pairs.split_off(max_inline);
    let key = format!(
        "{}{}/more-attrs",
        crate::layout::PROV_PREFIX,
        object.item_name()
    );
    let body = tail
        .iter()
        .map(|(n, v)| format!("{}\u{1f}{}", esc(n), esc(v)))
        .collect::<Vec<_>>()
        .join("\u{1e}");
    pairs.push((ATTR_MORE.to_string(), pointer(&key)));
    (pairs, Some((key, Blob::from(body))))
}

/// Greedy first-fit grouping of finished provenance items into
/// `BatchPutAttributes`-shaped calls: at most
/// [`sim_simpledb::MAX_BATCH_ITEMS`] items and
/// [`sim_simpledb::MAX_PAIRS_PER_BATCH`] summed attributes per group,
/// and never the same item name twice in one group (the batch API
/// rejects duplicates; splitting preserves the sequential-application
/// semantics instead). Item order is preserved.
pub fn pack_attr_batches(
    items: Vec<(String, Vec<ReplaceableAttribute>)>,
) -> Vec<Vec<(String, Vec<ReplaceableAttribute>)>> {
    let mut groups: Vec<Vec<(String, Vec<ReplaceableAttribute>)>> = Vec::new();
    let mut group: Vec<(String, Vec<ReplaceableAttribute>)> = Vec::new();
    let mut group_pairs = 0usize;
    for (name, attrs) in items {
        let overfull = group.len() == sim_simpledb::MAX_BATCH_ITEMS
            || group_pairs + attrs.len() > sim_simpledb::MAX_PAIRS_PER_BATCH
            || group.iter().any(|(n, _)| n == &name);
        if overfull && !group.is_empty() {
            groups.push(std::mem::take(&mut group));
            group_pairs = 0;
        }
        group_pairs += attrs.len();
        group.push((name, attrs));
    }
    if !group.is_empty() {
        groups.push(group);
    }
    groups
}

/// Reads provenance records back from a SimpleDB item's attributes,
/// resolving overflow pointers through `fetch` and skipping the
/// consistency attributes (`md5`, `nonce`).
///
/// # Errors
///
/// Propagates `fetch` failures.
pub fn decode_attributes(
    attrs: &[sim_simpledb::Attribute],
    mut fetch: impl FnMut(&str) -> Result<String>,
) -> Result<Vec<ProvenanceRecord>> {
    let mut records = Vec::with_capacity(attrs.len());
    let mut continuation: Vec<(String, String)> = Vec::new();
    for attr in attrs {
        if attr.name == ATTR_MD5 || attr.name == ATTR_NONCE {
            continue;
        }
        if attr.name == ATTR_MORE {
            let key = parse_pointer(&attr.value).ok_or_else(|| CloudError::Corrupt {
                message: "malformed continuation pointer".into(),
            })?;
            let body = fetch(key)?;
            for entry in body.split('\u{1e}').filter(|e| !e.is_empty()) {
                let Some((name, value)) = entry.split_once('\u{1f}') else {
                    return Err(CloudError::Corrupt {
                        message: format!("malformed continuation entry {entry:?}"),
                    });
                };
                continuation.push((unesc(name), unesc(value)));
            }
            continue;
        }
        let resolved = match parse_pointer(&attr.value) {
            Some(key) => fetch(key)?,
            None => attr.value.clone(),
        };
        records.push(ProvenanceRecord::from_pair(&attr.name, &resolved));
    }
    for (name, value) in continuation {
        let resolved = match parse_pointer(&value) {
            Some(key) => fetch(key)?,
            None => value,
        };
        records.push(ProvenanceRecord::from_pair(&name, &resolved));
    }
    Ok(records)
}

/// Extracts the nonce a data object was stored with.
///
/// # Errors
///
/// [`CloudError::Corrupt`] when the metadata lacks a nonce.
pub fn read_nonce(metadata: &Metadata) -> Result<String> {
    metadata
        .get(META_NONCE)
        .map(str::to_string)
        .ok_or_else(|| CloudError::Corrupt {
            message: "data object has no nonce".into(),
        })
}

/// Extracts the version a data object was stored with.
///
/// # Errors
///
/// [`CloudError::Corrupt`] when absent or unparsable.
pub fn read_version(metadata: &Metadata) -> Result<u32> {
    metadata
        .get(META_VERSION)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CloudError::Corrupt {
            message: "data object has no version".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass::{RecordKey, RecordValue};

    fn rec(key: &str, value: &str) -> ProvenanceRecord {
        ProvenanceRecord::from_pair(key, value)
    }

    #[test]
    fn small_records_stay_inline() {
        let obj = ObjectRef::new("foo", 2);
        let records = vec![rec("input", "bar:2"), rec("type", "file")];
        let enc = encode_records(&obj, &records);
        assert!(enc.overflows.is_empty());
        assert_eq!(enc.pairs.len(), 2);
        assert_eq!(enc.pairs[0], ("input".to_string(), "bar:2".to_string()));
    }

    #[test]
    fn big_values_overflow_with_pointers() {
        let obj = ObjectRef::new("foo", 1);
        let big = "e".repeat(3000);
        let records = vec![rec("env", &big), rec("type", "process")];
        let enc = encode_records(&obj, &records);
        assert_eq!(enc.overflows.len(), 1);
        assert_eq!(enc.overflows[0].0, "prov/foo 1/0");
        assert!(enc.pairs[0].1.starts_with("@s3:"));
        assert_eq!(enc.pairs[1].1, "process");
    }

    #[test]
    fn metadata_round_trip_with_overflow() {
        let obj = ObjectRef::new("foo", 3);
        let big = "x".repeat(2000);
        let records = vec![rec("input", "bar:2"), rec("env", &big), rec("type", "file")];
        let enc = encode_records(&obj, &records);
        let (meta, overflows) = encode_metadata(&obj, enc);
        assert!(meta.byte_size() <= METADATA_LIMIT);
        assert_eq!(read_version(&meta).unwrap(), 3);

        // Simulated overflow store.
        let fetch = |key: &str| -> Result<String> {
            overflows
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, blob)| String::from_utf8(blob.to_bytes().to_vec()).unwrap())
                .ok_or_else(|| CloudError::NotFound {
                    name: key.to_string(),
                })
        };
        let decoded = decode_metadata(&meta, fetch).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn many_small_records_spill_until_metadata_fits() {
        let obj = ObjectRef::new("foo", 1);
        // 30 records of ~100 bytes: 3 KB total, all under the 1 KB
        // per-record threshold, so the 2 KB cap forces extra spills.
        let records: Vec<ProvenanceRecord> = (0..30)
            .map(|i| rec("env", &format!("{i:03}{}", "v".repeat(97))))
            .collect();
        let enc = encode_records(&obj, &records);
        assert!(enc.overflows.is_empty());
        let (meta, overflows) = encode_metadata(&obj, enc);
        assert!(meta.byte_size() <= METADATA_LIMIT);
        assert!(!overflows.is_empty(), "spilling was required");
        let fetch = |key: &str| -> Result<String> {
            overflows
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, blob)| String::from_utf8(blob.to_bytes().to_vec()).unwrap())
                .ok_or_else(|| CloudError::NotFound {
                    name: key.to_string(),
                })
        };
        let decoded = decode_metadata(&meta, fetch).unwrap();
        assert_eq!(
            decoded, records,
            "record order and content survive spilling"
        );
    }

    #[test]
    fn simpledb_attr_round_trip() {
        let obj = ObjectRef::new("out", 1);
        let records = vec![
            rec("input", "proc:1:cc:1"),
            rec("input", "main.c:1"),
            rec("type", "file"),
        ];
        let enc = encode_records(&obj, &records);
        let attrs = to_simpledb_attributes(&enc);
        assert_eq!(attrs.len(), 3);
        assert!(
            attrs.iter().all(|a| !a.replace),
            "adds, never replaces (idempotency)"
        );

        let stored: Vec<sim_simpledb::Attribute> = attrs
            .iter()
            .map(|a| sim_simpledb::Attribute::new(a.name.clone(), a.value.clone()))
            .collect();
        let decoded = decode_attributes(&stored, |_| panic!("no overflow expected")).unwrap();
        // SimpleDB sets are unordered; compare as sets.
        let mut want = records.clone();
        want.sort();
        let mut got = decoded;
        got.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn decode_attributes_skips_consistency_attrs() {
        let stored = vec![
            sim_simpledb::Attribute::new("md5", "abc"),
            sim_simpledb::Attribute::new("nonce", "2"),
            sim_simpledb::Attribute::new("type", "file"),
        ];
        let decoded = decode_attributes(&stored, |_| unreachable!()).unwrap();
        assert_eq!(decoded, vec![rec("type", "file")]);
    }

    #[test]
    fn missing_overflow_object_propagates_error() {
        let obj = ObjectRef::new("foo", 1);
        let records = vec![rec("env", &"e".repeat(2000))];
        let enc = encode_records(&obj, &records);
        let (meta, _overflows) = encode_metadata(&obj, enc);
        let result = decode_metadata(&meta, |key| {
            Err(CloudError::NotFound {
                name: key.to_string(),
            })
        });
        assert!(matches!(result, Err(CloudError::NotFound { .. })));
    }

    #[test]
    fn nonce_and_version_extraction_errors() {
        let meta = Metadata::new();
        assert!(matches!(read_nonce(&meta), Err(CloudError::Corrupt { .. })));
        assert!(matches!(
            read_version(&meta),
            Err(CloudError::Corrupt { .. })
        ));
        let meta = Metadata::from_pairs([(META_VERSION, "notanumber")]);
        assert!(matches!(
            read_version(&meta),
            Err(CloudError::Corrupt { .. })
        ));
    }

    #[test]
    fn reference_records_survive_round_trip_as_refs() {
        let obj = ObjectRef::new("foo", 1);
        let records = vec![ProvenanceRecord::new(
            RecordKey::Input,
            RecordValue::Ref(ObjectRef::new("a", 1)),
        )];
        let enc = encode_records(&obj, &records);
        let (meta, _) = encode_metadata(&obj, enc);
        let decoded = decode_metadata(&meta, |_| unreachable!()).unwrap();
        assert_eq!(decoded[0].reference(), Some(&ObjectRef::new("a", 1)));
    }
}

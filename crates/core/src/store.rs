//! The `ProvenanceStore` abstraction all three architectures implement.

use std::fmt;

use pass::{FileFlush, ObjectRef, ProvenanceRecord};
use serde::{Deserialize, Serialize};
use simworld::Blob;

use crate::error::Result;
use crate::query::{ProvQuery, QueryAnswer};

/// How a read's data/provenance pairing was established.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ReadStatus {
    /// Data and provenance travelled in one unit (Architecture 1's
    /// single PUT); no mismatch is possible.
    AtomicUnit,
    /// `MD5(data ‖ nonce)` matched the provenance record, possibly after
    /// retries (Architectures 2/3).
    VerifiedConsistent {
        /// Re-read rounds needed before the pair matched.
        retries: u32,
    },
    /// Every retry returned mismatched data/provenance; the outcome
    /// carries the last pair read. Consistency is *violated but
    /// detected* — the caller knows not to trust it.
    InconsistencyDetected {
        /// Retries attempted before giving up.
        retries: u32,
    },
    /// Verification was disabled (the `verify_md5 = false` ablation);
    /// the pairing is whatever the replicas returned.
    Unverified,
}

impl ReadStatus {
    /// `true` unless an inconsistency was (or could silently be) served.
    pub fn is_consistent(self) -> bool {
        !matches!(self, ReadStatus::InconsistencyDetected { .. })
    }
}

impl fmt::Display for ReadStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadStatus::AtomicUnit => f.write_str("atomic-unit"),
            ReadStatus::VerifiedConsistent { retries } => {
                write!(f, "verified-consistent(retries={retries})")
            }
            ReadStatus::InconsistencyDetected { retries } => {
                write!(f, "inconsistency-detected(retries={retries})")
            }
            ReadStatus::Unverified => f.write_str("unverified"),
        }
    }
}

/// The result of reading an object back: data plus the provenance that
/// describes it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReadOutcome {
    /// The object version the store returned.
    pub object: ObjectRef,
    /// The data.
    pub data: Blob,
    /// The provenance records describing this version.
    pub records: Vec<ProvenanceRecord>,
    /// How the pairing was validated.
    pub status: ReadStatus,
}

impl ReadOutcome {
    /// `true` when data and provenance are known to describe the same
    /// version (the paper's read-correctness criterion for reads).
    pub fn consistent(&self) -> bool {
        self.status.is_consistent()
    }
}

/// What a recovery pass found and fixed after a crash.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Provenance items that referenced data never stored ("orphan
    /// provenance", §4.2) — deleted by the scan.
    pub orphan_provenance_removed: u64,
    /// Overflow/temporary objects deleted.
    pub objects_removed: u64,
    /// SimpleDB items scanned (the cost of the "inelegant" full scan).
    pub items_scanned: u64,
    /// Committed WAL transactions replayed to completion.
    pub transactions_replayed: u64,
}

/// A provenance-aware cloud store: one of the paper's three
/// architectures.
///
/// The object-safe core API: persist a PASS flush, read an object with
/// its provenance, run provenance queries, recover after a crash.
pub trait ProvenanceStore {
    /// Short architecture name (`"s3"`, `"s3+simpledb"`,
    /// `"s3+simpledb+sqs"`).
    fn architecture(&self) -> &'static str;

    /// Persists one object version and its provenance (PASS calls this on
    /// `close`).
    ///
    /// # Errors
    ///
    /// Service errors, or [`crate::CloudError::Crashed`] when fault
    /// injection kills the client mid-protocol.
    fn persist(&mut self, flush: &FileFlush) -> Result<()>;

    /// Persists a *group* of flushes in one go — the sink of the
    /// group-commit flusher (`pass::GroupCommitFlusher`). The final
    /// store state is identical to persisting the flushes one by one in
    /// order; architectures with native batch support override this to
    /// ship the group in far fewer billable requests (arch2 packs up to
    /// 25 provenance items per `BatchPutAttributes`, arch3 packs WAL
    /// records 10 per `SendMessageBatch`). The default simply loops over
    /// [`ProvenanceStore::persist`].
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::persist`]. On error, flushes earlier in the
    /// group may already be durable (exactly as with sequential point
    /// persists).
    fn persist_batch(&mut self, flushes: &[FileFlush]) -> Result<()> {
        for flush in flushes {
            self.persist(flush)?;
        }
        Ok(())
    }

    /// Persists several groups with up to `max_in_flight` requests per
    /// service overlapping in flight: each group's batch calls *issue*
    /// without waiting for the previous batch's completion, and the
    /// virtual clock follows the event-driven completion schedule
    /// instead of the serial latency sum. The final store state is
    /// identical to calling [`ProvenanceStore::persist_batch`] on each
    /// group in order (requests still issue in the same order — only
    /// their completion accounting overlaps); architectures wired to
    /// the shared [`simworld::SimWorld`] pipeline override this. The
    /// default is the synchronous path: one group at a time, no
    /// overlap. When no good `max_in_flight` is known up front,
    /// [`crate::persist_groups_adaptive`] drives the same group list
    /// with an AIMD-controlled depth instead of a fixed knob.
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::persist_batch`]. On error, groups earlier
    /// in the slice — and any request of the failing group issued
    /// before the crash — may already be durable.
    fn persist_pipelined(&mut self, groups: &[Vec<FileFlush>], max_in_flight: usize) -> Result<()> {
        let _ = max_in_flight;
        for group in groups {
            self.persist_batch(group)?;
        }
        Ok(())
    }

    /// Reads the current version of `name` together with its provenance,
    /// enforcing whatever consistency story the architecture has.
    ///
    /// # Errors
    ///
    /// [`crate::CloudError::NotFound`] when the object has no data
    /// stored; service errors.
    fn read(&mut self, name: &str) -> Result<ReadOutcome>;

    /// Executes a provenance query with the architecture's query engine.
    ///
    /// # Errors
    ///
    /// Service errors.
    fn query(&mut self, query: &ProvQuery) -> Result<QueryAnswer>;

    /// Post-crash recovery: whatever the architecture prescribes (orphan
    /// scan for Architecture 2, WAL replay + temp cleanup for
    /// Architecture 3, nothing for Architecture 1).
    ///
    /// # Errors
    ///
    /// Service errors.
    fn recover(&mut self) -> Result<RecoveryReport>;

    /// Drives any background daemons until quiescent. A no-op for
    /// architectures without daemons. Architecture 3's commit daemon
    /// honours [`crate::Arch3Config::daemon_depth`] here: with
    /// [`crate::DaemonDepth::Fixed`] or [`crate::DaemonDepth::Adaptive`]
    /// each step runs its receive/assemble/apply loop inside a
    /// pipelined region, overlapping WAL drains and per-transaction
    /// applies instead of paying the serial latency sum.
    ///
    /// # Errors
    ///
    /// Service errors, or a crash if one is armed inside a daemon.
    fn run_daemons_until_idle(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_status_consistency() {
        assert!(ReadStatus::AtomicUnit.is_consistent());
        assert!(ReadStatus::VerifiedConsistent { retries: 3 }.is_consistent());
        assert!(ReadStatus::Unverified.is_consistent());
        assert!(!ReadStatus::InconsistencyDetected { retries: 8 }.is_consistent());
    }

    #[test]
    fn read_status_display() {
        assert_eq!(ReadStatus::AtomicUnit.to_string(), "atomic-unit");
        assert_eq!(
            ReadStatus::VerifiedConsistent { retries: 2 }.to_string(),
            "verified-consistent(retries=2)"
        );
    }

    #[test]
    fn recovery_report_default_is_clean() {
        let r = RecoveryReport::default();
        assert_eq!(r.orphan_provenance_removed, 0);
        assert_eq!(r.transactions_replayed, 0);
    }
}

//! Architecture 3 — **S3 + SimpleDB + SQS** (§4.3).
//!
//! Like Architecture 2, data lives in S3 and provenance in SimpleDB —
//! but the client never writes either directly. Each client owns an SQS
//! queue used as a **write-ahead log**: on `close` it logs the
//! transaction (begin, a pointer to a *temporary* S3 object holding the
//! data, ≤ 8 KB provenance chunks, the MD5 record, commit). A **commit
//! daemon** drains the queue, assembles transactions, and applies only
//! those whose commit record arrived: COPY temp → final (COPY is free of
//! transfer charges), `PutAttributes`, then delete the log records and
//! the temp object.
//!
//! Atomicity now holds: a client crash before the commit record leaves a
//! transaction the daemon ignores (SQS's 4-day retention and the cleaner
//! daemon garbage-collect the residue); a daemon crash mid-apply is
//! harmless because every apply step is idempotent — the replay re-COPYs
//! and re-Puts the same state (the technique §4.3 credits to Brantner et
//! al.'s "Building a database on S3").

use std::collections::{BTreeMap, HashMap};

use pass::{CacheDir, FileFlush};
use sim_s3::{Metadata, MetadataDirective, S3Error, MAX_DELETE_KEYS, S3};
use sim_simpledb::{ReplaceableAttribute, SimpleDb};
use sim_sqs::{Sqs, MAX_BATCH_ENTRIES, RETENTION};
use simworld::{AdaptiveDepth, CrashSite, SimInstant, SimWorld};

use crate::closure::{ClosureIndex, ClosureMode};
use crate::error::{CloudError, Result};
use crate::layout::{
    data_key, nonce_for, pointer, tmp_prefix, ATTR_MD5, ATTR_NONCE, BUCKET, DOMAIN, META_NONCE,
    META_VERSION, TMP_PREFIX,
};
use crate::query::{ProvQuery, QueryAnswer, SimpleDbQueryEngine};
use crate::readpath::{verified_read, ReadContext};
use crate::retry::{with_throttle_retry, RetryPolicy};
use crate::serialize::{encode_records, fit_item_pairs, pack_attr_batches};
use crate::serve::{ServeParts, Serveable};
use crate::store::{ProvenanceStore, ReadOutcome, RecoveryReport};
use crate::wal::{chunk_pairs, pack_wal_batches, WalRecord};

/// Client crash site: before the begin record is logged.
pub const A3_BEFORE_BEGIN: CrashSite = CrashSite::new("arch3.before_begin");

/// Client crash site: after begin, before the temporary data object.
pub const A3_BEFORE_TEMP_PUT: CrashSite = CrashSite::new("arch3.before_temp_put");

/// Client crash site: temp object stored, data pointer not yet logged.
pub const A3_AFTER_TEMP_PUT: CrashSite = CrashSite::new("arch3.after_temp_put");

/// Client crash site: between provenance log records.
pub const A3_MID_PROV_LOG: CrashSite = CrashSite::new("arch3.mid_prov_log");

/// Client crash site: everything logged except the commit record — the
/// transaction must be ignored forever.
pub const A3_BEFORE_COMMIT: CrashSite = CrashSite::new("arch3.before_commit");

/// Daemon crash site: before the COPY to the final name.
pub const D3_BEFORE_COPY: CrashSite = CrashSite::new("daemon3.before_copy");

/// Daemon crash site: after the COPY, before PutAttributes.
pub const D3_AFTER_COPY: CrashSite = CrashSite::new("daemon3.after_copy");

/// Daemon crash site: between PutAttributes batches.
pub const D3_MID_PUTATTRS: CrashSite = CrashSite::new("daemon3.mid_putattrs");

/// Daemon crash site: transaction applied, log records not yet deleted
/// (replay must be idempotent).
pub const D3_BEFORE_MSG_DELETE: CrashSite = CrashSite::new("daemon3.before_msg_delete");

/// Daemon crash site: log gone, temp object not yet deleted (cleaner
/// territory).
pub const D3_BEFORE_TMP_DELETE: CrashSite = CrashSite::new("daemon3.before_tmp_delete");

/// Daemon crash site: edges committed to SimpleDB, closure-index rows
/// not yet written (only on the path when [`Arch3Config::closure`]
/// maintains the index). The WAL records are still present, so the
/// restarted daemon replays the whole apply — including the index adds.
pub const D3_BEFORE_INDEX_PUT: CrashSite = CrashSite::new("daemon3.before_index_put");

/// Daemon crash site: between closure-index `BatchPutAttributes` calls.
pub const D3_MID_INDEX_PUT: CrashSite = CrashSite::new("daemon3.mid_index_put");

/// How the commit daemon overlaps its receive/assemble/apply loop.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum DaemonDepth {
    /// One receive round and serial applies per step — the classic
    /// daemon, and the baseline every pipelined mode must match byte
    /// for byte.
    #[default]
    Serial,
    /// Each step runs inside a pipeline region with a fixed per-service
    /// in-flight cap: up to `depth` receive rounds issue back to back,
    /// and the apply chains of the ready transactions overlap up to the
    /// same cap.
    Fixed(usize),
    /// Like `Fixed`, but the depth is steered per step by an AIMD
    /// [`AdaptiveDepth`] controller reading the region's stall counts —
    /// no hand-tuned `max_in_flight`.
    Adaptive,
}

/// Tunables for [`S3SimpleDbSqs`].
#[derive(Copy, Clone, Debug)]
pub struct Arch3Config {
    /// Read retry policy.
    pub retry: RetryPolicy,
    /// Verify `MD5(data ‖ nonce)` on reads.
    pub verify_md5: bool,
    /// Include the nonce in the hash (ablation: without it, overwriting
    /// a file with identical content is undetectable).
    pub use_nonce: bool,
    /// The commit daemon runs its commit phase once
    /// `ApproximateNumberOfMessages` exceeds this (§4.3).
    pub commit_threshold: usize,
    /// Consecutive empty drain rounds before
    /// [`S3SimpleDbSqs::run_daemons_until_idle`] declares quiescence
    /// (SQS sampling means one empty receive proves nothing).
    pub drain_idle_rounds: u32,
    /// How the commit daemon pipelines its step (default: serial).
    pub daemon_depth: DaemonDepth,
    /// Ancestry-closure index behaviour (off by default, so the
    /// request counts and fingerprints of the plain §4.3 protocol are
    /// untouched).
    pub closure: ClosureMode,
}

impl Default for Arch3Config {
    fn default() -> Self {
        Arch3Config {
            retry: RetryPolicy::default(),
            verify_md5: true,
            use_nonce: true,
            commit_threshold: 8,
            drain_idle_rounds: 16,
            daemon_depth: DaemonDepth::Serial,
            closure: ClosureMode::Off,
        }
    }
}

/// What one daemon step accomplished.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DaemonProgress {
    /// Log records newly received (previously unseen).
    pub received: usize,
    /// Transactions applied to S3/SimpleDB.
    pub applied: usize,
    /// Abandoned assemblies evicted because their records aged past the
    /// SQS retention window (their messages are gone, so the
    /// transactions could never complete).
    pub evicted: usize,
}

#[derive(Debug)]
struct Assembly {
    /// When the daemon first saw a record of this transaction — the
    /// age the retention-window eviction is measured from.
    first_seen: SimInstant,
    expected: Option<u32>,
    committed: bool,
    payload: Vec<WalRecord>,
    payload_count: u32,
    /// `(message id, newest receipt handle)` per log record, in receive
    /// order. A redelivery *replaces* the handle in place: SQS only
    /// honours the newest handle, so keeping a superseded one would
    /// bill dead `DeleteMessageBatch` entries on every apply.
    records: Vec<(String, String)>,
}

impl Assembly {
    fn new(first_seen: SimInstant) -> Assembly {
        Assembly {
            first_seen,
            expected: None,
            committed: false,
            payload: Vec::new(),
            payload_count: 0,
            records: Vec::new(),
        }
    }

    fn complete(&self) -> bool {
        self.committed
            && self
                .expected
                .map(|n| self.payload_count == n)
                .unwrap_or(false)
    }

    fn handles(&self) -> Vec<String> {
        self.records.iter().map(|(_, h)| h.clone()).collect()
    }
}

/// The commit daemon: drains the WAL queue and applies committed
/// transactions (§4.3 "Commit" phase). In-memory assembly state is lost
/// on a crash, exactly like the real daemon process.
#[derive(Debug)]
pub struct CommitDaemon {
    world: SimWorld,
    s3: S3,
    db: SimpleDb,
    sqs: Sqs,
    wal_url: String,
    config: Arch3Config,
    assemblies: HashMap<u64, Assembly>,
    applied_total: u64,
    /// AIMD depth state for [`DaemonDepth::Adaptive`]; reset on a
    /// crash, like the rest of the daemon's memory.
    controller: AdaptiveDepth,
    /// Closure-index maintenance state; its ancestor cache is reset on
    /// a crash, like the rest of the daemon's memory.
    closure: ClosureIndex,
}

impl CommitDaemon {
    fn new(
        world: &SimWorld,
        s3: &S3,
        db: &SimpleDb,
        sqs: &Sqs,
        wal_url: &str,
        config: Arch3Config,
    ) -> CommitDaemon {
        CommitDaemon {
            world: world.clone(),
            s3: s3.clone(),
            db: db.clone(),
            sqs: sqs.clone(),
            wal_url: wal_url.to_string(),
            config,
            assemblies: HashMap::new(),
            applied_total: 0,
            controller: AdaptiveDepth::new(),
            closure: ClosureIndex::new(world, db),
        }
    }

    /// Transactions applied over this daemon's lifetime.
    pub fn applied_total(&self) -> u64 {
        self.applied_total
    }

    /// Incomplete transactions currently parked in memory, waiting for
    /// their missing records.
    pub fn pending_assemblies(&self) -> usize {
        self.assemblies.len()
    }

    /// The in-flight depth the adaptive controller has converged to
    /// (only meaningful under [`DaemonDepth::Adaptive`]).
    pub fn adaptive_depth(&self) -> usize {
        self.controller.depth()
    }

    /// One daemon iteration: check the queue depth (unless `force`),
    /// receive, assemble, apply complete transactions. Under
    /// [`DaemonDepth::Fixed`] or [`DaemonDepth::Adaptive`] the whole
    /// step runs inside a pipeline region — several receive rounds
    /// issue back to back, and the apply chains of the ready
    /// transactions overlap with the region's per-service cap, each
    /// transaction's copies completion-ordered by txid.
    ///
    /// # Errors
    ///
    /// Service errors, or [`CloudError::Crashed`] when a daemon crash
    /// site fires — in-memory assembly state is dropped, as a process
    /// death would.
    pub fn step(&mut self, force: bool) -> Result<DaemonProgress> {
        let result = match self.config.daemon_depth {
            DaemonDepth::Serial => self.step_inner(force, 1),
            DaemonDepth::Fixed(depth) => self.step_pipelined(force, depth.max(1)),
            DaemonDepth::Adaptive => self.step_pipelined(force, self.controller.depth()),
        };
        if let Err(e) = &result {
            if e.is_crash() {
                // The daemon process died: its in-memory assemblies —
                // and the adaptive controller's learned depth — are
                // gone. Undelivered messages become visible again after
                // the visibility timeout.
                self.assemblies.clear();
                self.controller = AdaptiveDepth::new();
                self.closure.reset();
            }
        }
        result
    }

    /// One step inside a pipeline region of `depth` requests per
    /// service. Receives are idempotent (an undeleted message simply
    /// redelivers) and every apply step already is, so overlapping them
    /// cannot change the final store — only when the requests complete.
    /// When the shared world already has a region open (a pipelined
    /// client driving `poll_daemon` mid-burst), the step rides that
    /// region instead: pipelines do not nest.
    fn step_pipelined(&mut self, force: bool, depth: usize) -> Result<DaemonProgress> {
        let opened = self.world.pipeline_depth().is_none();
        if opened {
            self.world.begin_pipeline(depth);
        }
        let result = self.step_inner(force, depth);
        if opened {
            // Drain even when a crash fired: issued requests are on the
            // wire regardless of the daemon dying.
            let stats = self.world.drain_pipeline();
            if self.config.daemon_depth == DaemonDepth::Adaptive {
                self.controller.observe(&stats);
                self.controller.region_complete();
            }
        }
        result
    }

    fn step_inner(&mut self, force: bool, rounds: usize) -> Result<DaemonProgress> {
        let mut progress = DaemonProgress::default();
        // Evict abandoned assemblies: a commit-less transaction (its
        // client crashed mid-log) whose records have aged past the SQS
        // retention window can never complete — its messages are gone
        // from the queue, so holding the assembly only leaks memory in
        // a long-running daemon.
        let now = self.world.now();
        let before = self.assemblies.len();
        self.assemblies
            .retain(|_, a| now.saturating_since(a.first_seen) <= RETENTION);
        progress.evicted = before - self.assemblies.len();
        if !force {
            let depth = self.sqs.approximate_number_of_messages(&self.wal_url)?;
            if depth <= self.config.commit_threshold {
                return Ok(progress);
            }
        }
        // Up to `rounds` receive rounds per step: each round's messages
        // turn invisible for the visibility timeout, so the rounds
        // return disjoint batches and issue back to back inside a
        // pipeline region. An empty round ends the step early — the
        // queue may still hold unsampled messages, but the next step
        // will see them.
        for _ in 0..rounds.max(1) {
            let now = self.world.now();
            let msgs = self.sqs.receive_message(&self.wal_url, 10)?;
            if msgs.is_empty() {
                break;
            }
            for msg in msgs {
                let Some(record) = WalRecord::decode(&msg.body) else {
                    continue;
                };
                let assembly = self
                    .assemblies
                    .entry(record.txid())
                    .or_insert_with(|| Assembly::new(now));
                if let Some(slot) = assembly
                    .records
                    .iter_mut()
                    .find(|(id, _)| *id == msg.message_id)
                {
                    // Redelivery of a record we already hold (visibility
                    // timeout expired while the transaction waits for its
                    // missing pieces). Replace the stale handle with the
                    // newer one — SQS only honours the newest, so the
                    // superseded handle would sit in every future
                    // DeleteMessageBatch as a dead billable entry.
                    slot.1 = msg.receipt_handle.clone();
                    continue;
                }
                progress.received += 1;
                assembly
                    .records
                    .push((msg.message_id.clone(), msg.receipt_handle.clone()));
                match &record {
                    WalRecord::Begin { records, .. } => assembly.expected = Some(*records),
                    WalRecord::Commit { .. } => assembly.committed = true,
                    payload => {
                        assembly.payload.push(payload.clone());
                        assembly.payload_count += 1;
                    }
                }
            }
        }
        let mut ready: Vec<u64> = self
            .assemblies
            .iter()
            .filter(|(_, a)| a.complete())
            .map(|(txid, _)| *txid)
            .collect();
        // The assemblies map is a HashMap; its iteration order would
        // leak into the cross-transaction batch packing and make
        // request counts (and so virtual time) nondeterministic across
        // runs of the same seed. Apply in txid order instead.
        ready.sort_unstable();
        if !ready.is_empty() {
            let group: Vec<(u64, Assembly)> = ready
                .iter()
                .map(|txid| (*txid, self.assemblies.remove(txid).expect("listed above")))
                .collect();
            self.apply_group(&group)?;
            self.applied_total += group.len() as u64;
            progress.applied += group.len();
        }
        Ok(progress)
    }

    /// Applies a group of complete transactions — everything that came
    /// ready in one daemon step — with the SimpleDB writes **batched
    /// across transactions**: one `BatchPutAttributes` per ≤ 25 items /
    /// ≤ 256 summed pairs instead of one `PutAttributes` per
    /// 100-attribute chunk per item, and the log-record/temp-object
    /// deletes through `DeleteMessageBatch` and multi-object delete.
    /// Every step stays idempotent, so a crash anywhere is repaired by
    /// replaying from the (still present) log records — grouping only
    /// widens the replay window, never the outcome.
    ///
    /// Inside a pipelined step each transaction's copies carry its txid
    /// as a completion-order key: one transaction's apply chain stays
    /// ordered while different transactions overlap freely.
    fn apply_group(&mut self, assemblies: &[(u64, Assembly)]) -> Result<()> {
        let mut temp_keys: Vec<String> = Vec::new();
        let mut items: Vec<(String, Vec<ReplaceableAttribute>)> = Vec::new();

        self.world.crash_point(D3_BEFORE_COPY)?;
        for (txid, assembly) in assemblies {
            let mut attr_batches: BTreeMap<String, Vec<ReplaceableAttribute>> = BTreeMap::new();
            for record in &assembly.payload {
                match record {
                    WalRecord::Data {
                        temp_key,
                        name,
                        version,
                        nonce,
                        ..
                    } => {
                        let mut meta = Metadata::new();
                        meta.insert(META_VERSION, version.to_string());
                        meta.insert(META_NONCE, nonce.clone());
                        self.copy_with_retry(*txid, temp_key, &data_key(name), meta)?;
                        temp_keys.push(temp_key.clone());
                        self.world.crash_point(D3_AFTER_COPY)?;
                    }
                    WalRecord::Prov {
                        item_name, pairs, ..
                    } => {
                        let batch = attr_batches.entry(item_name.clone()).or_default();
                        for (name, value) in pairs {
                            let resolved = match parse_staged(value) {
                                Some((tmp, perm)) => {
                                    self.copy_with_retry(*txid, tmp, perm, Metadata::new())?;
                                    temp_keys.push(tmp.to_string());
                                    pointer(perm)
                                }
                                None => value.clone(),
                            };
                            batch.push(ReplaceableAttribute::add(name.clone(), resolved));
                        }
                    }
                    WalRecord::Md5 {
                        item_name,
                        md5_hex,
                        nonce,
                        ..
                    } => {
                        let batch = attr_batches.entry(item_name.clone()).or_default();
                        batch.push(ReplaceableAttribute::add(ATTR_MD5, md5_hex.clone()));
                        batch.push(ReplaceableAttribute::add(ATTR_NONCE, nonce.clone()));
                    }
                    WalRecord::Begin { .. } | WalRecord::Commit { .. } => {}
                }
            }
            for (item_name, attrs) in attr_batches {
                // Respect SimpleDB's 256-pair item cap: spill the tail
                // of a massive item into a continuation object
                // (idempotent PUT).
                let object = pass::ObjectRef::parse_item_name(&item_name)
                    .unwrap_or_else(|| pass::ObjectRef::new(item_name.clone(), 0));
                let pairs: Vec<(String, String)> = attrs
                    .iter()
                    .map(|a| (a.name.clone(), a.value.clone()))
                    .collect();
                let (pairs, continuation) = fit_item_pairs(&object, pairs);
                if let Some((key, blob)) = continuation {
                    with_throttle_retry(&self.world, &self.config.retry, || {
                        Ok(self
                            .s3
                            .put_object(BUCKET, &key, blob.clone(), Metadata::new())?)
                    })?;
                }
                items.push((
                    item_name,
                    pairs
                        .into_iter()
                        .map(|(name, value)| ReplaceableAttribute::add(name, value))
                        .collect(),
                ));
            }
        }
        // Two transactions re-flushing the same item version land in
        // separate packed groups (pack_attr_batches splits duplicates),
        // preserving the sequential-application result.
        let closure_src = self.config.closure.maintains().then(|| items.clone());
        for group in pack_attr_batches(items) {
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.db.batch_put_attributes(DOMAIN, &group)?)
            })?;
            self.world.crash_point(D3_MID_PUTATTRS)?;
        }
        // Closure-index maintenance sits before the message deletes: a
        // crash anywhere in this window leaves the WAL records in
        // place, so the restarted daemon replays both the provenance
        // puts and the (idempotent) index adds.
        if let Some(src) = closure_src {
            self.world.crash_point(D3_BEFORE_INDEX_PUT)?;
            self.closure
                .index_items(&src, self.config.retry, D3_MID_INDEX_PUT)?;
        }
        self.world.crash_point(D3_BEFORE_MSG_DELETE)?;
        // Log records go 10 handles per DeleteMessageBatch — a
        // transaction's ≥ 4 records cost one round trip, not four.
        for (_, assembly) in assemblies {
            let handles = assembly.handles();
            for chunk in handles.chunks(MAX_BATCH_ENTRIES) {
                let outcomes = with_throttle_retry(&self.world, &self.config.retry, || {
                    Ok(self.sqs.delete_message_batch(&self.wal_url, chunk)?)
                })?;
                for outcome in outcomes {
                    outcome?;
                }
            }
        }
        self.world.crash_point(D3_BEFORE_TMP_DELETE)?;
        // Temp objects go through multi-object delete from two keys up:
        // these deletes sit on the commit path, where the saved round
        // trips outweigh multi-delete's pricier put-class request rate
        // (~1e-5 USD per call — the cleaner, with no latency budget,
        // honours the billing break-even instead). A single key stays a
        // point DELETE: same round trip, cheaper request class.
        match temp_keys.len() {
            0 => {}
            1 => with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.s3.delete_object(BUCKET, &temp_keys[0])?)
            })?,
            _ => {
                for chunk in temp_keys.chunks(MAX_DELETE_KEYS) {
                    with_throttle_retry(&self.world, &self.config.retry, || {
                        Ok(self.s3.delete_objects(BUCKET, chunk)?)
                    })?;
                }
            }
        }
        Ok(())
    }

    /// COPY with bounded retries: the temp object may not yet be visible
    /// on the sampled replica (eventual consistency), or may already be
    /// deleted by a previous life of the daemon (replay) — in which case
    /// the destination already carries the data. The copy is keyed by
    /// `txid` so a pipelined step keeps one transaction's copies in
    /// completion order.
    fn copy_with_retry(&self, txid: u64, src: &str, dst: &str, meta: Metadata) -> Result<()> {
        let mut attempts = 0;
        loop {
            let outcome = with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.s3.copy_object_ordered(
                    BUCKET,
                    src,
                    BUCKET,
                    dst,
                    MetadataDirective::Replace(meta.clone()),
                    txid,
                )?)
            });
            match outcome {
                Ok(()) => return Ok(()),
                Err(CloudError::S3(S3Error::NoSuchKey { .. })) => {
                    // Replayed transaction whose temp was already
                    // garbage-collected: the destination exists, so the
                    // work is done.
                    if self.s3.latest_object(BUCKET, dst).is_some() {
                        return Ok(());
                    }
                    if attempts >= self.config.retry.max_retries {
                        return Err(CloudError::give_up(
                            attempts + 1,
                            CloudError::NotFound {
                                name: src.to_string(),
                            },
                        ));
                    }
                    attempts += 1;
                    self.config.retry.pause(&self.world, attempts);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Parses a staged overflow pointer `@tmp:{tmp_key}|{perm_key}`.
fn parse_staged(value: &str) -> Option<(&str, &str)> {
    let rest = value.strip_prefix("@tmp:")?;
    rest.split_once('|')
}

/// The S3 + SimpleDB + SQS provenance store.
///
/// # Examples
///
/// ```
/// use pass::FileFlush;
/// use provenance_cloud::{ProvenanceStore, S3SimpleDbSqs};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let mut store = S3SimpleDbSqs::new(&world, "client-1");
/// let flush = FileFlush::builder("a.txt").data(Blob::from("hi")).build();
/// store.persist(&flush)?; // only logged so far
/// store.run_daemons_until_idle()?; // commit daemon applies it
/// assert!(store.read("a.txt")?.consistent());
/// # Ok::<(), provenance_cloud::CloudError>(())
/// ```
#[derive(Debug)]
pub struct S3SimpleDbSqs {
    world: SimWorld,
    s3: S3,
    db: SimpleDb,
    sqs: Sqs,
    wal_url: String,
    client_id: String,
    cache: CacheDir,
    config: Arch3Config,
    daemon: CommitDaemon,
}

impl S3SimpleDbSqs {
    /// Creates the store with fresh endpoints and a per-client WAL queue
    /// (default SimpleDB shard count).
    pub fn new(world: &SimWorld, client_id: &str) -> S3SimpleDbSqs {
        S3SimpleDbSqs::with_shards(world, client_id, sim_simpledb::DEFAULT_SHARDS)
    }

    /// Creates the store with fresh endpoints whose SimpleDB domains
    /// *and* S3 buckets are split into `shards` hash shards.
    pub fn with_shards(world: &SimWorld, client_id: &str, shards: usize) -> S3SimpleDbSqs {
        S3SimpleDbSqs::with_shard_plan(world, client_id, simworld::ShardPlan::fixed(shards))
    }

    /// Creates the store with fresh endpoints provisioned per `plan` —
    /// initial shard count plus an optional hot-shard split policy,
    /// applied to both the S3 bucket and the SimpleDB domain.
    pub fn with_shard_plan(
        world: &SimWorld,
        client_id: &str,
        plan: simworld::ShardPlan,
    ) -> S3SimpleDbSqs {
        let s3 = S3::with_shard_plan(world, plan);
        s3.create_bucket(BUCKET)
            .expect("fresh endpoint has no buckets");
        let db = SimpleDb::with_shard_plan(world, plan);
        db.create_domain(DOMAIN)
            .expect("fresh endpoint has no domains");
        let sqs = Sqs::new(world);
        S3SimpleDbSqs::with_services(world, &s3, &db, &sqs, client_id)
    }

    /// Creates the store over existing endpoints (bucket and domain must
    /// exist; the WAL queue is created if missing).
    pub fn with_services(
        world: &SimWorld,
        s3: &S3,
        db: &SimpleDb,
        sqs: &Sqs,
        client_id: &str,
    ) -> S3SimpleDbSqs {
        let wal_url = sqs.create_queue(format!("wal-{client_id}"));
        let config = Arch3Config::default();
        S3SimpleDbSqs {
            world: world.clone(),
            s3: s3.clone(),
            db: db.clone(),
            sqs: sqs.clone(),
            daemon: CommitDaemon::new(world, s3, db, sqs, &wal_url, config),
            wal_url,
            client_id: client_id.to_string(),
            cache: CacheDir::new(),
            config,
        }
    }

    /// Replaces the configuration (also reconfigures the daemon).
    pub fn set_config(&mut self, config: Arch3Config) {
        self.config = config;
        self.daemon.config = config;
    }

    /// The underlying S3 handle (shared).
    pub fn s3(&self) -> &S3 {
        &self.s3
    }

    /// The underlying SimpleDB handle (shared).
    pub fn simpledb(&self) -> &SimpleDb {
        &self.db
    }

    /// The underlying SQS handle (shared).
    pub fn sqs(&self) -> &Sqs {
        &self.sqs
    }

    /// This client's WAL queue URL.
    pub fn wal_url(&self) -> &str {
        &self.wal_url
    }

    /// The local cache directory.
    pub fn cache(&self) -> &CacheDir {
        &self.cache
    }

    /// Mutable access to the commit daemon (to drive it step by step in
    /// experiments).
    pub fn daemon(&mut self) -> &mut CommitDaemon {
        &mut self.daemon
    }

    /// Simulates the daemon's periodic poll: runs one step that only
    /// drains if the queue looks deeper than the commit threshold.
    ///
    /// # Errors
    ///
    /// As [`CommitDaemon::step`].
    pub fn poll_daemon(&mut self) -> Result<DaemonProgress> {
        self.daemon.step(false)
    }

    /// The cleaner daemon (§4.3): deletes temporary objects older than
    /// the 4-day SQS retention window — by then their log records are
    /// gone, so no committed transaction can still need them. Returns
    /// how many objects were removed.
    ///
    /// # Errors
    ///
    /// S3 service errors.
    pub fn run_cleaner(&mut self) -> Result<u64> {
        let mut removed = 0;
        let now = self.world.now();
        let mut doomed: Vec<String> = Vec::new();
        for summary in self.s3.list_all(BUCKET, TMP_PREFIX)? {
            let head = match self.s3.head_object(BUCKET, &summary.key) {
                Ok(h) => h,
                Err(S3Error::NoSuchKey { .. }) => continue,
                Err(e) => return Err(e.into()),
            };
            if now.saturating_since(head.last_modified) > RETENTION {
                doomed.push(summary.key);
            }
        }
        // Reap through multi-object delete: a GC sweep of N expired
        // temporaries costs ⌈N/1000⌉ requests instead of N. Below the
        // billing break-even, point deletes stay cheaper: multi-delete
        // is a put-class POST at 10x a point DELETE's get-class rate,
        // and a background sweep has no latency budget to buy back.
        const MULTI_DELETE_BREAK_EVEN: usize = 10;
        if doomed.len() < MULTI_DELETE_BREAK_EVEN {
            for key in &doomed {
                with_throttle_retry(&self.world, &self.config.retry, || {
                    Ok(self.s3.delete_object(BUCKET, key)?)
                })?;
                removed += 1;
            }
        } else {
            for chunk in doomed.chunks(MAX_DELETE_KEYS) {
                removed += with_throttle_retry(&self.world, &self.config.retry, || {
                    Ok(self.s3.delete_objects(BUCKET, chunk)?)
                })?;
            }
        }
        Ok(removed)
    }

    /// Exact number of messages currently on the WAL queue (authoritative
    /// test view, unbilled).
    pub fn wal_depth_exact(&self) -> usize {
        self.sqs.exact_message_count(&self.wal_url)
    }
}

impl Serveable for S3SimpleDbSqs {
    fn serve_parts(&self) -> ServeParts {
        ServeParts {
            world: self.world.clone(),
            s3: self.s3.clone(),
            db: self.db.clone(),
            retry: self.config.retry,
            verify_md5: self.config.verify_md5,
            use_nonce: self.config.use_nonce,
            serve_closure: self.config.closure.serves(),
        }
    }
}

impl ProvenanceStore for S3SimpleDbSqs {
    fn architecture(&self) -> &'static str {
        "s3+simpledb+sqs"
    }

    /// §4.3 log phase: begin → temp data object + pointer record →
    /// provenance chunks → MD5 record → commit. Nothing touches the
    /// final S3/SimpleDB locations; that is the commit daemon's job.
    fn persist(&mut self, flush: &FileFlush) -> Result<()> {
        self.cache.store(flush);
        // Random transaction ids stay unique across client restarts.
        let txid = self.world.rand_u64();
        let tmp = tmp_prefix(&self.client_id, txid);
        let nonce = nonce_for(&flush.object);
        let item_name = flush.object.item_name();

        // Serialise provenance; oversized values are staged as temp
        // objects now and COPYed to their permanent keys at commit.
        let encoded = encode_records(&flush.object, &flush.records);
        let mut pairs = encoded.pairs.clone();
        let mut staged: Vec<(String, simworld::Blob)> = Vec::new();
        for (i, (perm_key, blob)) in encoded.overflows.iter().enumerate() {
            let tmp_key = format!("{tmp}ovf{i}");
            for (_, value) in pairs.iter_mut() {
                if value == &pointer(perm_key) {
                    *value = format!("@tmp:{tmp_key}|{perm_key}");
                }
            }
            staged.push((tmp_key, blob.clone()));
        }

        let md5_hex = if self.config.use_nonce {
            flush.data.md5_with_suffix(nonce.as_bytes()).to_hex()
        } else {
            flush.data.md5().to_hex()
        };
        let prov_chunks = chunk_pairs(txid, &item_name, &pairs);
        let payload_count = 1 + prov_chunks.len() as u32 + 1; // data + chunks + md5

        // Log phase step (b): the begin record.
        self.world.crash_point(A3_BEFORE_BEGIN)?;
        let begin = WalRecord::Begin {
            txid,
            records: payload_count,
        };
        with_throttle_retry(&self.world, &self.config.retry, || {
            Ok(self.sqs.send_message(&self.wal_url, begin.encode())?)
        })?;

        // Step (c): stage the data (and overflow values) as temporary
        // objects, then log the pointer.
        self.world.crash_point(A3_BEFORE_TEMP_PUT)?;
        let temp_key = format!("{tmp}data");
        with_throttle_retry(&self.world, &self.config.retry, || {
            Ok(self
                .s3
                .put_object(BUCKET, &temp_key, flush.data.clone(), Metadata::new())?)
        })?;
        for (tmp_key, blob) in &staged {
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self
                    .s3
                    .put_object(BUCKET, tmp_key, blob.clone(), Metadata::new())?)
            })?;
        }
        self.world.crash_point(A3_AFTER_TEMP_PUT)?;
        let data_record = WalRecord::Data {
            txid,
            temp_key,
            name: flush.object.name.clone(),
            version: flush.object.version,
            nonce: nonce.clone(),
        };
        with_throttle_retry(&self.world, &self.config.retry, || {
            Ok(self.sqs.send_message(&self.wal_url, data_record.encode())?)
        })?;

        // Step (d): provenance chunks + the MD5 record.
        for chunk in prov_chunks {
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.sqs.send_message(&self.wal_url, chunk.encode())?)
            })?;
            self.world.crash_point(A3_MID_PROV_LOG)?;
        }
        let md5_record = WalRecord::Md5 {
            txid,
            item_name,
            md5_hex,
            nonce,
        };
        with_throttle_retry(&self.world, &self.config.retry, || {
            Ok(self.sqs.send_message(&self.wal_url, md5_record.encode())?)
        })?;

        // Step (e): commit.
        self.world.crash_point(A3_BEFORE_COMMIT)?;
        with_throttle_retry(&self.world, &self.config.retry, || {
            Ok(self
                .sqs
                .send_message(&self.wal_url, WalRecord::Commit { txid }.encode())?)
        })?;
        Ok(())
    }

    /// The batched §4.3 log phase. Every flush's temporaries are staged
    /// first; then the WAL records of the *whole group* — BEGIN, data
    /// pointer, provenance chunks, MD5, COMMIT per transaction, in
    /// order — travel as `SendMessageBatch` calls packed under both the
    /// 10-entry and [`sim_sqs::MAX_BATCH_PAYLOAD`] limits
    /// ([`pack_wal_batches`]). Order is preserved, so a crash between
    /// batches can only drop a *suffix*: any transaction whose COMMIT
    /// made it onto the queue is complete, and any transaction cut off
    /// mid-payload is missing its COMMIT and is ignored forever — the
    /// §4.3 atomicity argument is untouched, while a typical 5-record
    /// transaction costs ⌈5/10⌉ send requests instead of 5.
    fn persist_batch(&mut self, flushes: &[FileFlush]) -> Result<()> {
        if flushes.is_empty() {
            return Ok(());
        }
        self.world.crash_point(A3_BEFORE_BEGIN)?;
        let mut records: Vec<WalRecord> = Vec::new();
        for flush in flushes {
            self.cache.store(flush);
            // Random transaction ids stay unique across client restarts.
            let txid = self.world.rand_u64();
            let tmp = tmp_prefix(&self.client_id, txid);
            let nonce = nonce_for(&flush.object);
            let item_name = flush.object.item_name();

            // Serialise provenance; oversized values are staged as temp
            // objects now and COPYed to permanent keys at commit.
            let encoded = encode_records(&flush.object, &flush.records);
            let mut pairs = encoded.pairs.clone();
            let mut staged: Vec<(String, simworld::Blob)> = Vec::new();
            for (i, (perm_key, blob)) in encoded.overflows.iter().enumerate() {
                let tmp_key = format!("{tmp}ovf{i}");
                for (_, value) in pairs.iter_mut() {
                    if value == &pointer(perm_key) {
                        *value = format!("@tmp:{tmp_key}|{perm_key}");
                    }
                }
                staged.push((tmp_key, blob.clone()));
            }

            // Stage the data and overflow temporaries before any record
            // of this transaction can be committed.
            self.world.crash_point(A3_BEFORE_TEMP_PUT)?;
            let temp_key = format!("{tmp}data");
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self
                    .s3
                    .put_object(BUCKET, &temp_key, flush.data.clone(), Metadata::new())?)
            })?;
            for (tmp_key, blob) in &staged {
                with_throttle_retry(&self.world, &self.config.retry, || {
                    Ok(self
                        .s3
                        .put_object(BUCKET, tmp_key, blob.clone(), Metadata::new())?)
                })?;
            }
            self.world.crash_point(A3_AFTER_TEMP_PUT)?;

            let md5_hex = if self.config.use_nonce {
                flush.data.md5_with_suffix(nonce.as_bytes()).to_hex()
            } else {
                flush.data.md5().to_hex()
            };
            let prov_chunks = chunk_pairs(txid, &item_name, &pairs);
            let payload_count = 1 + prov_chunks.len() as u32 + 1; // data + chunks + md5
            records.push(WalRecord::Begin {
                txid,
                records: payload_count,
            });
            records.push(WalRecord::Data {
                txid,
                temp_key,
                name: flush.object.name.clone(),
                version: flush.object.version,
                nonce: nonce.clone(),
            });
            records.extend(prov_chunks);
            records.push(WalRecord::Md5 {
                txid,
                item_name,
                md5_hex,
                nonce,
            });
            records.push(WalRecord::Commit { txid });
        }

        let batches = pack_wal_batches(&records);
        let last = batches.len() - 1;
        for (i, batch) in batches.iter().enumerate() {
            if i == last {
                // The group's final commit rides in this batch.
                self.world.crash_point(A3_BEFORE_COMMIT)?;
            }
            let outcomes = with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.sqs.send_message_batch(&self.wal_url, batch)?)
            })?;
            // Entry failures cannot happen (the chunker caps every
            // record at one message); surface them if they ever do.
            for outcome in outcomes {
                outcome?;
            }
            if i != last {
                self.world.crash_point(A3_MID_PROV_LOG)?;
            }
        }
        Ok(())
    }

    /// The pipelined §4.3 log phase: groups issue back to back with up
    /// to `max_in_flight` requests per service in flight. The WAL
    /// queue's sends are completion-ordered per queue by the scheduler
    /// (see [`simworld::SimWorld::record_batch_keyed`]), so however
    /// deep the pipeline runs, BEGIN/payload/COMMIT never complete out
    /// of order and the commit-less-suffix atomicity argument is
    /// untouched. Issue order — and the final state — is identical to
    /// the synchronous batch path.
    fn persist_pipelined(&mut self, groups: &[Vec<FileFlush>], max_in_flight: usize) -> Result<()> {
        self.world.begin_pipeline(max_in_flight);
        let result = groups.iter().try_for_each(|g| self.persist_batch(g));
        // Drain even when a crash fired: issued requests are on the
        // wire regardless of the client dying.
        self.world.drain_pipeline();
        result
    }

    fn read(&mut self, name: &str) -> Result<ReadOutcome> {
        let ctx = ReadContext {
            world: &self.world,
            s3: &self.s3,
            db: &self.db,
            retry: self.config.retry,
            verify_md5: self.config.verify_md5,
            use_nonce: self.config.use_nonce,
        };
        verified_read(&ctx, name)
    }

    fn query(&mut self, query: &ProvQuery) -> Result<QueryAnswer> {
        let mut engine =
            SimpleDbQueryEngine::new(&self.db, &self.s3, &self.world, self.config.retry);
        if self.config.closure.serves() {
            engine = engine.serving_closure();
        }
        engine.execute(query)
    }

    /// Recovery after a crash (client or daemon): replay the WAL — the
    /// commit daemon picks up whatever transactions were committed — and
    /// let the cleaner collect expired temporaries. No scan of SimpleDB
    /// is ever needed, which is the point of this architecture.
    fn recover(&mut self) -> Result<RecoveryReport> {
        let before = self.daemon.applied_total();
        self.run_daemons_until_idle()?;
        Ok(RecoveryReport {
            transactions_replayed: self.daemon.applied_total() - before,
            objects_removed: self.run_cleaner()?,
            ..RecoveryReport::default()
        })
    }

    /// Drives the commit daemon until it stops making progress (several
    /// consecutive empty rounds, since a sampled receive proves nothing).
    /// After each empty round the daemon asks the queue for its
    /// (billable, approximate) message count — the count spans
    /// *invisible* messages too, so a positive answer means undeleted
    /// deliveries (a crashed daemon's) are waiting out their visibility
    /// timeout, and only then does an idle round advance virtual time to
    /// bring them back. An empty queue quiesces in a handful of cheap
    /// empty receives instead of a fixed multi-second confirmation tail.
    fn run_daemons_until_idle(&mut self) -> Result<()> {
        let mut idle_rounds = 0;
        while idle_rounds < self.config.drain_idle_rounds {
            let progress = self.daemon.step(true)?;
            if progress.received == 0 && progress.applied == 0 {
                idle_rounds += 1;
                if self.sqs.approximate_number_of_messages(&self.wal_url)? > 0 {
                    self.world.advance(simworld::SimDuration::from_secs(5));
                }
            } else {
                idle_rounds = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_pointer_parsing() {
        assert_eq!(
            parse_staged("@tmp:tmp/c/1/ovf0|prov/foo 1/0"),
            Some(("tmp/c/1/ovf0", "prov/foo 1/0"))
        );
        assert_eq!(parse_staged("@s3:prov/foo 1/0"), None);
        assert_eq!(parse_staged("plain"), None);
        assert_eq!(parse_staged("@tmp:no-separator"), None);
    }

    #[test]
    fn overflow_key_is_stable_for_staging() {
        // The staged pointer embeds the permanent key produced by
        // encode_records; make sure the layout helpers agree.
        let object = pass::ObjectRef::new("foo", 1);
        assert_eq!(crate::layout::overflow_key(&object, 0), "prov/foo 1/0");
    }
}

//! Read retry policy.
//!
//! Under eventual consistency a read may observe stale or missing state;
//! the paper's remedy is to "reissue the query, retrieving data from S3
//! until we get consistent provenance and data" (§4.2). A [`RetryPolicy`]
//! bounds that loop and spaces the attempts out in virtual time so the
//! replicas can catch up.

use serde::{Deserialize, Serialize};
use simworld::{SimDuration, SimWorld};

/// Bounds and pacing for read-retry loops.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-read rounds before giving up.
    pub max_retries: u32,
    /// Virtual-time pause between rounds.
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 50,
            backoff: SimDuration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (useful to expose raw staleness).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff: SimDuration::ZERO,
        }
    }

    /// Sleeps for the backoff in virtual time.
    pub fn pause(&self, world: &SimWorld) {
        if self.backoff > SimDuration::ZERO {
            world.advance(self.backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::SimWorld;

    #[test]
    fn defaults_are_reasonable() {
        let p = RetryPolicy::default();
        assert!(p.max_retries > 0);
        assert!(p.backoff > SimDuration::ZERO);
    }

    #[test]
    fn pause_advances_virtual_time() {
        let world = SimWorld::counting();
        let p = RetryPolicy {
            max_retries: 1,
            backoff: SimDuration::from_secs(1),
        };
        let t0 = world.now();
        p.pause(&world);
        assert_eq!((world.now() - t0).as_secs(), 1);
        let t1 = world.now();
        RetryPolicy::none().pause(&world);
        assert_eq!(world.now(), t1);
    }
}

//! Read retry policy.
//!
//! Under eventual consistency a read may observe stale or missing state;
//! the paper's remedy is to "reissue the query, retrieving data from S3
//! until we get consistent provenance and data" (§4.2). A [`RetryPolicy`]
//! bounds that loop and spaces the attempts out in virtual time so the
//! replicas can catch up.
//!
//! Pacing is exponential with a cap: attempt `n` sleeps
//! `initial_backoff * 2^(n-1)`, clamped to `max_backoff`. Most transient
//! misses resolve within a few milliseconds of replication lag, so early
//! attempts are cheap; a permanently missing key costs at most
//! [`RetryPolicy::total_bound`] of virtual time — for the default policy
//! that stays within the 5 s envelope the old flat 100 ms × 50 schedule
//! charged, while the common few-retry case costs milliseconds instead
//! of multiples of 100 ms.

use serde::{Deserialize, Serialize};
use simworld::{SimDuration, SimWorld};

/// Bounds and pacing for read-retry loops.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-read rounds before giving up.
    pub max_retries: u32,
    /// Virtual-time pause before the first retry; doubles per attempt.
    pub initial_backoff: SimDuration,
    /// Upper clamp on the per-attempt pause.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 50,
            initial_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (useful to expose raw staleness).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
        }
    }

    /// A flat-rate policy: every attempt pauses exactly `backoff` (the
    /// pre-exponential behaviour, still useful in experiments that want
    /// a fixed cadence).
    pub fn flat(max_retries: u32, backoff: SimDuration) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            initial_backoff: backoff,
            max_backoff: backoff,
        }
    }

    /// The pause before retry attempt `attempt` (1-based):
    /// `initial_backoff * 2^(attempt-1)`, clamped to `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        if attempt == 0 {
            return SimDuration::ZERO;
        }
        let initial = self.initial_backoff.as_micros();
        let cap = self.max_backoff.as_micros();
        let scaled = initial.saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX));
        SimDuration::from_micros(scaled.min(cap))
    }

    /// Total virtual time a caller that exhausts the whole retry budget
    /// spends pausing — the cost of a permanently missing key.
    pub fn total_bound(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 1..=self.max_retries {
            total += self.backoff_for(attempt);
        }
        total
    }

    /// Sleeps for attempt `attempt`'s backoff (1-based) in virtual time.
    pub fn pause(&self, world: &SimWorld, attempt: u32) {
        let backoff = self.backoff_for(attempt);
        if backoff > SimDuration::ZERO {
            world.advance(backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::SimWorld;

    #[test]
    fn defaults_are_reasonable() {
        let p = RetryPolicy::default();
        assert!(p.max_retries > 0);
        assert!(p.initial_backoff > SimDuration::ZERO);
        assert!(p.max_backoff >= p.initial_backoff);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(1), SimDuration::from_millis(1));
        assert_eq!(p.backoff_for(2), SimDuration::from_millis(2));
        assert_eq!(p.backoff_for(3), SimDuration::from_millis(4));
        assert_eq!(p.backoff_for(7), SimDuration::from_millis(64));
        assert_eq!(p.backoff_for(8), SimDuration::from_millis(100));
        assert_eq!(p.backoff_for(50), SimDuration::from_millis(100));
    }

    #[test]
    fn default_total_bound_stays_within_old_flat_envelope() {
        // The flat predecessor charged 50 × 100 ms = 5 s per permanently
        // missing key; the exponential default must not exceed it.
        let p = RetryPolicy::default();
        let old_flat = SimDuration::from_millis(100 * 50);
        assert!(p.total_bound() <= old_flat);
        // ...but it is still in the same order of magnitude, so the
        // retry budget rides out the same replication lag.
        assert!(p.total_bound() >= SimDuration::from_millis(4_000));
    }

    #[test]
    fn early_retries_no_longer_cost_linear_time() {
        // A key that becomes visible after 5 rounds used to charge
        // 5 × 100 ms = 500 ms; exponential pacing charges 1+2+4+8+16 ms.
        let world = SimWorld::counting();
        let p = RetryPolicy::default();
        let t0 = world.now();
        for attempt in 1..=5 {
            p.pause(&world, attempt);
        }
        assert_eq!(world.now() - t0, SimDuration::from_millis(31));
    }

    #[test]
    fn flat_policy_reproduces_fixed_cadence() {
        let p = RetryPolicy::flat(3, SimDuration::from_millis(100));
        assert_eq!(p.backoff_for(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff_for(3), SimDuration::from_millis(100));
        assert_eq!(p.total_bound(), SimDuration::from_millis(300));
    }

    #[test]
    fn pause_advances_virtual_time() {
        let world = SimWorld::counting();
        let p = RetryPolicy::flat(1, SimDuration::from_secs(1));
        let t0 = world.now();
        p.pause(&world, 1);
        assert_eq!((world.now() - t0).as_secs(), 1);
        let t1 = world.now();
        RetryPolicy::none().pause(&world, 1);
        assert_eq!(world.now(), t1);
    }
}

//! Read retry policy.
//!
//! Under eventual consistency a read may observe stale or missing state;
//! the paper's remedy is to "reissue the query, retrieving data from S3
//! until we get consistent provenance and data" (§4.2). A [`RetryPolicy`]
//! bounds that loop and spaces the attempts out in virtual time so the
//! replicas can catch up.
//!
//! Pacing is exponential with a cap: attempt `n` sleeps
//! `initial_backoff * 2^(n-1)`, clamped to `max_backoff`. Most transient
//! misses resolve within a few milliseconds of replication lag, so early
//! attempts are cheap; a permanently missing key costs at most
//! [`RetryPolicy::total_bound`] of virtual time — for the default policy
//! that stays within the 5 s envelope the old flat 100 ms × 50 schedule
//! charged, while the common few-retry case costs milliseconds instead
//! of multiples of 100 ms.

use serde::{Deserialize, Serialize};
use simworld::{SimDuration, SimWorld};

use crate::error::{CloudError, Result};

/// Bounds and pacing for read-retry loops.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-read rounds before giving up.
    pub max_retries: u32,
    /// Virtual-time pause before the first retry; doubles per attempt.
    pub initial_backoff: SimDuration,
    /// Upper clamp on the per-attempt pause.
    pub max_backoff: SimDuration,
    /// Randomise each throttle-backoff pause over `[base/2, base]` using
    /// the world's seeded RNG ("equal jitter") so a fleet of clients
    /// rejected together does not retry in lockstep. Off by default;
    /// when off, no RNG is drawn, so enabling jitter never perturbs a
    /// no-jitter run's draw sequence.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 50,
            initial_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_millis(100),
            jitter: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (useful to expose raw staleness).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter: false,
        }
    }

    /// A flat-rate policy: every attempt pauses exactly `backoff` (the
    /// pre-exponential behaviour, still useful in experiments that want
    /// a fixed cadence).
    pub fn flat(max_retries: u32, backoff: SimDuration) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            initial_backoff: backoff,
            max_backoff: backoff,
            jitter: false,
        }
    }

    /// Enables seeded backoff jitter (see [`RetryPolicy::jitter`]).
    pub fn with_jitter(mut self) -> RetryPolicy {
        self.jitter = true;
        self
    }

    /// The pause before retry attempt `attempt` (1-based):
    /// `initial_backoff * 2^(attempt-1)`, clamped to `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        if attempt == 0 {
            return SimDuration::ZERO;
        }
        let initial = self.initial_backoff.as_micros();
        let cap = self.max_backoff.as_micros();
        let scaled = initial.saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX));
        SimDuration::from_micros(scaled.min(cap))
    }

    /// Total virtual time a caller that exhausts the whole retry budget
    /// spends pausing — the cost of a permanently missing key.
    pub fn total_bound(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 1..=self.max_retries {
            total += self.backoff_for(attempt);
        }
        total
    }

    /// Sleeps for attempt `attempt`'s backoff (1-based) in virtual time.
    pub fn pause(&self, world: &SimWorld, attempt: u32) {
        let backoff = self.backoff_for(attempt);
        if backoff > SimDuration::ZERO {
            world.advance(backoff);
        }
    }

    /// [`RetryPolicy::pause`] with the policy's jitter applied: with
    /// jitter on, the pause is drawn uniformly from `[base/2, base]`
    /// using the world's seeded RNG; with jitter off (the default) this
    /// is exactly `pause` and draws nothing, so disabled jitter leaves
    /// the RNG stream untouched.
    pub fn pause_jittered(&self, world: &SimWorld, attempt: u32) {
        let base = self.backoff_for(attempt);
        if base == SimDuration::ZERO {
            return;
        }
        if !self.jitter {
            world.advance(base);
            return;
        }
        let draw = world.rand_f64();
        let micros = (base.as_micros() as f64 * (0.5 + 0.5 * draw)).round() as u64;
        world.advance(SimDuration::from_micros(micros.max(1)));
    }
}

/// Runs `op`, retrying provider-side 503 rate rejections
/// ([`CloudError::is_throttle`]) under `policy`'s exponential backoff —
/// the client-side half of throttling. Throttling must cost *time,
/// never state*: the rejected request applied nothing, so reissuing it
/// after a pause converges on the same final store an unthrottled run
/// reaches. Every pause is tallied on the world
/// ([`SimWorld::note_throttle_retry`](simworld::SimWorld::note_throttle_retry)),
/// and a spent budget surfaces as [`CloudError::RetryExhausted`]
/// wrapping the final 503, so fleet runs count exhaustion instead of
/// misattributing it.
///
/// Non-throttle errors (and successes) pass straight through.
pub fn with_throttle_retry<T>(
    world: &SimWorld,
    policy: &RetryPolicy,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let issued_at = world.now();
    let mut retries = 0u32;
    loop {
        match op() {
            Err(e) if e.is_throttle() => {
                if retries >= policy.max_retries {
                    return Err(CloudError::give_up(retries + 1, e));
                }
                retries += 1;
                world.note_throttle_retry();
                policy.pause_jittered(world, retries);
            }
            other => {
                if retries > 0 {
                    // The winning attempt's latency sample should span
                    // the whole client-observed wait — rejected attempts
                    // and backoff included — not just the final charge.
                    world.backdate_last_sample(issued_at);
                }
                return other;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simworld::SimWorld;

    #[test]
    fn defaults_are_reasonable() {
        let p = RetryPolicy::default();
        assert!(p.max_retries > 0);
        assert!(p.initial_backoff > SimDuration::ZERO);
        assert!(p.max_backoff >= p.initial_backoff);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(1), SimDuration::from_millis(1));
        assert_eq!(p.backoff_for(2), SimDuration::from_millis(2));
        assert_eq!(p.backoff_for(3), SimDuration::from_millis(4));
        assert_eq!(p.backoff_for(7), SimDuration::from_millis(64));
        assert_eq!(p.backoff_for(8), SimDuration::from_millis(100));
        assert_eq!(p.backoff_for(50), SimDuration::from_millis(100));
    }

    #[test]
    fn default_total_bound_stays_within_old_flat_envelope() {
        // The flat predecessor charged 50 × 100 ms = 5 s per permanently
        // missing key; the exponential default must not exceed it.
        let p = RetryPolicy::default();
        let old_flat = SimDuration::from_millis(100 * 50);
        assert!(p.total_bound() <= old_flat);
        // ...but it is still in the same order of magnitude, so the
        // retry budget rides out the same replication lag.
        assert!(p.total_bound() >= SimDuration::from_millis(4_000));
    }

    #[test]
    fn early_retries_no_longer_cost_linear_time() {
        // A key that becomes visible after 5 rounds used to charge
        // 5 × 100 ms = 500 ms; exponential pacing charges 1+2+4+8+16 ms.
        let world = SimWorld::counting();
        let p = RetryPolicy::default();
        let t0 = world.now();
        for attempt in 1..=5 {
            p.pause(&world, attempt);
        }
        assert_eq!(world.now() - t0, SimDuration::from_millis(31));
    }

    #[test]
    fn flat_policy_reproduces_fixed_cadence() {
        let p = RetryPolicy::flat(3, SimDuration::from_millis(100));
        assert_eq!(p.backoff_for(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff_for(3), SimDuration::from_millis(100));
        assert_eq!(p.total_bound(), SimDuration::from_millis(300));
    }

    #[test]
    fn disabled_jitter_draws_no_rng_and_matches_plain_pause() {
        // Two identically-seeded worlds: one pauses plainly, the other
        // through pause_jittered with jitter off. Clock and RNG stream
        // must be indistinguishable — the satellite pin for "jitter off
        // by default changes nothing".
        let plain = SimWorld::new(42);
        let unjittered = SimWorld::new(42);
        let p = RetryPolicy::default();
        for attempt in 1..=6 {
            p.pause(&plain, attempt);
            p.pause_jittered(&unjittered, attempt);
        }
        assert_eq!(plain.now(), unjittered.now());
        assert_eq!(plain.rand_u64(), unjittered.rand_u64());
    }

    #[test]
    fn jittered_backoff_is_seeded_bounded_and_deterministic() {
        let run = |seed: u64| {
            let world = SimWorld::new(seed);
            let p = RetryPolicy::default().with_jitter();
            let mut pauses = Vec::new();
            for attempt in 1..=8 {
                let t0 = world.now();
                p.pause_jittered(&world, attempt);
                pauses.push(world.now() - t0);
            }
            pauses
        };
        let a = run(7);
        // Equal jitter: each pause lands in [base/2, base].
        let p = RetryPolicy::default();
        for (attempt, pause) in (1u32..).zip(&a) {
            let base = p.backoff_for(attempt).as_micros();
            let got = pause.as_micros();
            assert!(
                got * 2 >= base && got <= base,
                "attempt {attempt}: {got}µs outside [{}, {base}]µs",
                base / 2
            );
        }
        // Same seed, same schedule; a different seed moves it.
        assert_eq!(a, run(7));
        assert_ne!(a, run(8));
    }

    #[test]
    fn throttle_retry_reissues_until_clear_and_tallies() {
        let world = SimWorld::counting();
        let policy = RetryPolicy::default();
        let mut rejections = 3;
        let out = with_throttle_retry(&world, &policy, || {
            if rejections > 0 {
                rejections -= 1;
                return Err(sim_s3::S3Error::ServiceUnavailable { bucket: "b".into() }.into());
            }
            Ok(99)
        });
        assert_eq!(out.unwrap(), 99);
        assert_eq!(world.throttle_retries(), 3);
        // Backoff advanced the clock: 1 + 2 + 4 ms.
        assert_eq!(
            world.now() - simworld::SimInstant::EPOCH,
            SimDuration::from_millis(7)
        );
    }

    #[test]
    fn throttle_retry_exhaustion_is_structured_and_none_gives_up_loudly() {
        let world = SimWorld::counting();
        // RetryPolicy::none() must not swallow the transient error: the
        // very first 503 surfaces as a structured give-up.
        let out: crate::error::Result<()> =
            with_throttle_retry(&world, &RetryPolicy::none(), || {
                Err(sim_s3::S3Error::ServiceUnavailable { bucket: "b".into() }.into())
            });
        let err = out.unwrap_err();
        assert!(matches!(
            err,
            crate::error::CloudError::RetryExhausted { attempts: 1, .. }
        ));
        assert!(err.to_string().contains("gave up after 1 attempts"));

        // A bounded budget gives up after max_retries + 1 tries.
        let policy = RetryPolicy::flat(2, SimDuration::from_millis(1));
        let out: crate::error::Result<()> = with_throttle_retry(&world, &policy, || {
            Err(sim_s3::S3Error::ServiceUnavailable { bucket: "b".into() }.into())
        });
        assert!(matches!(
            out.unwrap_err(),
            crate::error::CloudError::RetryExhausted { attempts: 3, .. }
        ));
    }

    #[test]
    fn non_throttle_errors_pass_straight_through() {
        let world = SimWorld::counting();
        let out: crate::error::Result<()> =
            with_throttle_retry(&world, &RetryPolicy::default(), || {
                Err(crate::error::CloudError::NotFound { name: "x".into() })
            });
        assert!(matches!(
            out.unwrap_err(),
            crate::error::CloudError::NotFound { .. }
        ));
        assert_eq!(world.throttle_retries(), 0);
    }

    #[test]
    fn pause_advances_virtual_time() {
        let world = SimWorld::counting();
        let p = RetryPolicy::flat(1, SimDuration::from_secs(1));
        let t0 = world.now();
        p.pause(&world, 1);
        assert_eq!((world.now() - t0).as_secs(), 1);
        let t1 = world.now();
        RetryPolicy::none().pause(&world, 1);
        assert_eq!(world.now(), t1);
    }
}

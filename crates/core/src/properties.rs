//! Machine-checkable validators for the paper's three provenance-system
//! properties (§3), reproducing **Table 1**.
//!
//! | Architecture      | Atomicity | Consistency | Causal ord. | Eff. query |
//! |-------------------|-----------|-------------|-------------|------------|
//! | S3                |     ✓     |      ✓      |      ✓      |     ✗      |
//! | S3+SimpleDB       |     ✗     |      ✓      |      ✓      |     ✓      |
//! | S3+SimpleDB+SQS   |     ✓     |      ✓      |      ✓      |     ✓      |
//!
//! Rather than asserting the table, each entry is *measured*:
//!
//! * **atomicity** — crash the client at every protocol step boundary,
//!   run the architecture's designed background machinery (the commit
//!   daemon for Architecture 3 — the manual orphan scan of Architecture 2
//!   deliberately does not count), and inspect the authoritative cloud
//!   state for provenance-without-data or data-without-provenance;
//! * **consistency** — read while replicas are still propagating and
//!   check that no mismatched data/provenance pairing is ever served as
//!   consistent;
//! * **causal ordering** — after crashes and recovery, every ancestor
//!   referenced by stored provenance must itself be stored (the eventual
//!   form of §3);
//! * **efficient query** — run Q2 against two corpus sizes and test
//!   whether the operation count scales with the corpus (scan) or with
//!   the result (index).

use std::collections::BTreeMap;
use std::fmt;

use pass::{FileFlush, ObjectRef, Observer, ProvenanceRecord, TraceEvent};
use serde::{Deserialize, Serialize};
use simworld::{Blob, Consistency, CrashSite, LatencyModel, SimConfig, SimDuration, SimWorld};

use crate::arch1::{StandaloneS3, A1_BEFORE_DATA_PUT, A1_BEFORE_OVERFLOW_PUT};
use crate::arch2::{
    S3SimpleDb, A2_BEFORE_DATA_PUT, A2_BEFORE_INDEX_PUT, A2_BEFORE_OVERFLOW_PUT,
    A2_BEFORE_PROV_PUT, A2_MID_INDEX_PUT, A2_MID_PROV_PUT,
};
use crate::arch3::{
    S3SimpleDbSqs, A3_AFTER_TEMP_PUT, A3_BEFORE_BEGIN, A3_BEFORE_COMMIT, A3_BEFORE_TEMP_PUT,
    A3_MID_PROV_LOG, D3_AFTER_COPY, D3_BEFORE_COPY, D3_BEFORE_INDEX_PUT, D3_BEFORE_MSG_DELETE,
    D3_BEFORE_TMP_DELETE, D3_MID_INDEX_PUT, D3_MID_PUTATTRS,
};
use crate::error::Result;
use crate::layout::{data_key, ATTR_MD5, BUCKET, DATA_PREFIX, DOMAIN};
use crate::query::ProvQuery;
use crate::serialize::{decode_attributes, decode_metadata, read_version};
use crate::store::ProvenanceStore;

/// Which of the paper's three architectures to instantiate.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ArchKind {
    /// §4.1 Standalone S3.
    S3,
    /// §4.2 S3 + SimpleDB.
    S3SimpleDb,
    /// §4.3 S3 + SimpleDB + SQS.
    S3SimpleDbSqs,
}

impl ArchKind {
    /// All three, in paper order.
    pub const ALL: [ArchKind; 3] = [ArchKind::S3, ArchKind::S3SimpleDb, ArchKind::S3SimpleDbSqs];

    /// Display name matching Table 1's row labels.
    pub fn label(self) -> &'static str {
        match self {
            ArchKind::S3 => "S3",
            ArchKind::S3SimpleDb => "S3+SimpleDB",
            ArchKind::S3SimpleDbSqs => "S3+SimpleDB+SQS",
        }
    }

    /// Builds a store of this kind on `world` (default SimpleDB shard
    /// count for the architectures that carry one).
    pub fn build(self, world: &SimWorld) -> Box<dyn ProvenanceStore> {
        self.build_with_shards(world, sim_simpledb::DEFAULT_SHARDS)
    }

    /// Builds a store of this kind with an explicit shard count, applied
    /// to every sharded backend the architecture uses (S3 buckets, and
    /// SimpleDB domains where present).
    pub fn build_with_shards(self, world: &SimWorld, shards: usize) -> Box<dyn ProvenanceStore> {
        self.build_with_shard_plan(world, simworld::ShardPlan::fixed(shards))
    }

    /// Builds a store of this kind provisioned per `plan` — initial
    /// shard count plus an optional hot-shard split policy, applied to
    /// every sharded backend the architecture uses. All three
    /// architectures run unchanged on a fixed plan; with a split policy
    /// armed, hot shards split in the background without altering
    /// converged store state.
    pub fn build_with_shard_plan(
        self,
        world: &SimWorld,
        plan: simworld::ShardPlan,
    ) -> Box<dyn ProvenanceStore> {
        match self {
            ArchKind::S3 => Box::new(StandaloneS3::with_shard_plan(world, plan)),
            ArchKind::S3SimpleDb => Box::new(S3SimpleDb::with_shard_plan(world, plan)),
            ArchKind::S3SimpleDbSqs => {
                Box::new(S3SimpleDbSqs::with_shard_plan(world, "prop-client", plan))
            }
        }
    }

    /// The client-side crash sites of this architecture's persist
    /// protocol.
    pub fn client_crash_sites(self) -> &'static [CrashSite] {
        match self {
            ArchKind::S3 => &[A1_BEFORE_OVERFLOW_PUT, A1_BEFORE_DATA_PUT],
            ArchKind::S3SimpleDb => &[
                A2_BEFORE_OVERFLOW_PUT,
                A2_BEFORE_PROV_PUT,
                A2_MID_PROV_PUT,
                A2_BEFORE_INDEX_PUT,
                A2_MID_INDEX_PUT,
                A2_BEFORE_DATA_PUT,
            ],
            ArchKind::S3SimpleDbSqs => &[
                A3_BEFORE_BEGIN,
                A3_BEFORE_TEMP_PUT,
                A3_AFTER_TEMP_PUT,
                A3_MID_PROV_LOG,
                A3_BEFORE_COMMIT,
            ],
        }
    }

    /// Daemon-side crash sites (empty for architectures without
    /// daemons).
    pub fn daemon_crash_sites(self) -> &'static [CrashSite] {
        match self {
            ArchKind::S3SimpleDbSqs => &[
                D3_BEFORE_COPY,
                D3_AFTER_COPY,
                D3_MID_PUTATTRS,
                D3_BEFORE_INDEX_PUT,
                D3_MID_INDEX_PUT,
                D3_BEFORE_MSG_DELETE,
                D3_BEFORE_TMP_DELETE,
            ],
            _ => &[],
        }
    }
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One row of Table 1, as measured.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyMatrix {
    /// Architecture under test.
    pub architecture: String,
    /// No crash site leaves provenance-without-data or vice versa.
    pub atomicity: bool,
    /// No mismatched data/provenance pairing is served as consistent.
    pub consistency: bool,
    /// Every stored object's ancestors are (eventually) stored.
    pub causal_ordering: bool,
    /// Query cost scales with the result, not the corpus.
    pub efficient_query: bool,
}

/// Detailed outcome of the atomicity check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicityReport {
    /// `(site label, violation observed)` for every crash site that
    /// fired.
    pub sites: Vec<(String, bool)>,
}

impl AtomicityReport {
    /// `true` when no site produced a violation.
    pub fn holds(&self) -> bool {
        self.sites.iter().all(|(_, violated)| !violated)
    }
}

/// The standard little workload used by the checks: one source file, a
/// tool with an oversized environment (to exercise record overflow), and
/// two derived files forming a chain.
fn standard_flushes() -> Vec<FileFlush> {
    let mut obs = Observer::new();
    let mut flushes = Vec::new();
    let big_env = format!("PATH=/usr/bin\nDATA={}", "e".repeat(1600));
    for ev in [
        TraceEvent::source("in.dat", Blob::synthetic(1, 4096)),
        TraceEvent::exec(1, "tool", "tool in.dat", &big_env, None),
        TraceEvent::read(1, "in.dat"),
        TraceEvent::write(1, "mid.dat"),
        TraceEvent::close(1, "mid.dat", Blob::synthetic(2, 2048)),
        TraceEvent::exit(1),
        TraceEvent::exec(2, "refine", "refine mid.dat", "PATH=/usr/bin", None),
        TraceEvent::read(2, "mid.dat"),
        TraceEvent::write(2, "out.dat"),
        TraceEvent::close(2, "out.dat", Blob::synthetic(3, 1024)),
        TraceEvent::exit(2),
    ] {
        flushes.extend(obs.observe(ev).expect("trace is well-formed"));
    }
    flushes
}

// The checks need the raw service handles for authoritative inspection;
// the concrete types expose them, the trait deliberately does not.
// Downcasting through Any would force `Any` into the public trait, so the
// properties module instead rebuilds stores itself and keeps the concrete
// types. These helpers are only called with matching kinds.
//
// A handful of short-lived values exist at a time, so the size spread
// between variants is irrelevant; boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Store {
    S3(StandaloneS3),
    Db(S3SimpleDb),
    Sqs(S3SimpleDbSqs),
}

impl Store {
    fn build(kind: ArchKind, world: &SimWorld) -> Store {
        match kind {
            ArchKind::S3 => Store::S3(StandaloneS3::new(world)),
            ArchKind::S3SimpleDb => Store::Db(S3SimpleDb::new(world)),
            ArchKind::S3SimpleDbSqs => Store::Sqs(S3SimpleDbSqs::new(world, "prop-client")),
        }
    }

    fn as_store(&mut self) -> &mut dyn ProvenanceStore {
        match self {
            Store::S3(s) => s,
            Store::Db(s) => s,
            Store::Sqs(s) => s,
        }
    }

    fn corpus(&self) -> BTreeMap<ObjectRef, Vec<ProvenanceRecord>> {
        match self {
            Store::S3(s) => collect_s3_corpus(s.s3()),
            Store::Db(s) => collect_db_corpus(s.s3(), s.simpledb()),
            Store::Sqs(s) => collect_db_corpus(s.s3(), s.simpledb()),
        }
    }

    /// The architecture's *designed* post-crash machinery: WAL replay for
    /// Architecture 3; nothing for the others (Architecture 2's orphan
    /// scan is explicitly not part of the protocol).
    fn run_designed_recovery(&mut self) -> Result<()> {
        if let Store::Sqs(s) = self {
            s.run_daemons_until_idle()?;
        }
        Ok(())
    }

    /// Does the authoritative state pair every provenance item with its
    /// data and vice versa?
    fn atomicity_violation(&self) -> bool {
        match self {
            Store::S3(_) => false, // single-PUT: structurally paired
            Store::Db(s) => db_atomicity_violation(s.s3(), s.simpledb()),
            Store::Sqs(s) => db_atomicity_violation(s.s3(), s.simpledb()),
        }
    }
}

fn collect_s3_corpus(s3: &sim_s3::S3) -> BTreeMap<ObjectRef, Vec<ProvenanceRecord>> {
    let mut out = BTreeMap::new();
    for key in s3.latest_keys(BUCKET, DATA_PREFIX) {
        let Some(name) = key.strip_prefix(DATA_PREFIX) else {
            continue;
        };
        let Some(obj) = s3.latest_object(BUCKET, &key) else {
            continue;
        };
        let Ok(version) = read_version(&obj.metadata) else {
            continue;
        };
        let records = decode_metadata(&obj.metadata, |k| {
            s3.latest_object(BUCKET, k)
                .map(|o| String::from_utf8_lossy(&o.body.to_bytes()).into_owned())
                .ok_or_else(|| crate::error::CloudError::NotFound {
                    name: k.to_string(),
                })
        });
        if let Ok(records) = records {
            out.insert(ObjectRef::new(name.to_string(), version), records);
        }
    }
    out
}

fn collect_db_corpus(
    s3: &sim_s3::S3,
    db: &sim_simpledb::SimpleDb,
) -> BTreeMap<ObjectRef, Vec<ProvenanceRecord>> {
    let mut out = BTreeMap::new();
    for item_name in db.latest_item_names(DOMAIN) {
        let Some(object) = ObjectRef::parse_item_name(&item_name) else {
            continue;
        };
        let Some(attrs) = db.latest_item(DOMAIN, &item_name) else {
            continue;
        };
        let records = decode_attributes(&attrs, |k| {
            s3.latest_object(BUCKET, k)
                .map(|o| String::from_utf8_lossy(&o.body.to_bytes()).into_owned())
                .ok_or_else(|| crate::error::CloudError::NotFound {
                    name: k.to_string(),
                })
        });
        if let Ok(records) = records {
            out.insert(object, records);
        }
    }
    out
}

fn db_atomicity_violation(s3: &sim_s3::S3, db: &sim_simpledb::SimpleDb) -> bool {
    // Provenance without data: an item describing a version the data
    // store never reached — or an item missing its MD5 record (partial
    // PutAttributes).
    for item_name in db.latest_item_names(DOMAIN) {
        let Some(object) = ObjectRef::parse_item_name(&item_name) else {
            continue;
        };
        let Some(attrs) = db.latest_item(DOMAIN, &item_name) else {
            continue;
        };
        if !attrs.iter().any(|a| a.name == ATTR_MD5) {
            return true;
        }
        let data_version = s3
            .latest_object(BUCKET, &data_key(&object.name))
            .and_then(|o| read_version(&o.metadata).ok());
        if data_version.map(|v| v >= object.version) != Some(true) {
            return true;
        }
    }
    // Data without provenance.
    for key in s3.latest_keys(BUCKET, DATA_PREFIX) {
        let Some(name) = key.strip_prefix(DATA_PREFIX) else {
            continue;
        };
        let Some(obj) = s3.latest_object(BUCKET, &key) else {
            continue;
        };
        let Ok(version) = read_version(&obj.metadata) else {
            continue;
        };
        let item = ObjectRef::new(name.to_string(), version).item_name();
        match db.latest_item(DOMAIN, &item) {
            Some(attrs) if attrs.iter().any(|a| a.name == ATTR_MD5) => {}
            _ => return true,
        }
    }
    false
}

/// Crash-injects every client and daemon site of `kind` and reports
/// per-site atomicity verdicts.
///
/// # Errors
///
/// Service errors (crash errors are expected and absorbed).
pub fn check_atomicity(kind: ArchKind, seed: u64) -> Result<AtomicityReport> {
    let mut sites = Vec::new();
    for &site in kind.client_crash_sites() {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        });
        world.with_faults(|f| f.arm(site));
        let mut store = Store::build(kind, &world);
        let mut crashed = false;
        for flush in standard_flushes() {
            match store.as_store().persist(&flush) {
                Ok(()) => {}
                Err(e) if e.is_crash() => {
                    crashed = true;
                    break; // the client is dead; nothing further persists
                }
                Err(e) => return Err(e),
            }
        }
        if !crashed {
            continue; // site not on this workload's path
        }
        store.run_designed_recovery()?;
        world.settle();
        sites.push((site.name().to_string(), store.atomicity_violation()));
    }
    for &site in kind.daemon_crash_sites() {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        });
        let mut store = Store::build(kind, &world);
        for flush in standard_flushes() {
            store.as_store().persist(&flush)?;
        }
        world.with_faults(|f| f.arm(site));
        // The daemon crashes mid-apply...
        let crash_seen = match store.as_store().run_daemons_until_idle() {
            Ok(()) => false,
            Err(e) if e.is_crash() => true,
            Err(e) => return Err(e),
        };
        // ...and is restarted: replay must converge to a clean state.
        store.run_designed_recovery()?;
        world.settle();
        if crash_seen {
            sites.push((site.name().to_string(), store.atomicity_violation()));
        }
    }
    Ok(AtomicityReport { sites })
}

/// Reads under replication lag; returns `true` when no mismatched
/// pairing was ever served as consistent.
///
/// # Errors
///
/// Service errors.
pub fn check_consistency(kind: ArchKind, seed: u64) -> Result<bool> {
    let world = SimWorld::with_config(SimConfig {
        seed,
        consistency: Consistency::eventual(SimDuration::from_secs(3)),
        latency: LatencyModel::zero(),
        replicas: 3,
    });
    let mut store = Store::build(kind, &world);
    for flush in standard_flushes() {
        store.as_store().persist(&flush)?;
    }
    store.run_designed_recovery()?;
    // Do NOT settle: read during the propagation window, many times.
    let mut ok = true;
    for _ in 0..24 {
        let outcome = store.as_store().read("mid.dat")?;
        if outcome.consistent() {
            // A consistent read must carry provenance records that
            // describe this very data (checked structurally: non-empty
            // records for the returned version).
            if outcome.records.is_empty() {
                ok = false;
            }
        }
        world.advance(SimDuration::from_millis(120));
    }
    Ok(ok)
}

/// Crash-injects every client site during a chained workload, lets the
/// client retry from its cache, and verifies every stored object's
/// ancestors are stored too (eventual causal ordering).
///
/// # Errors
///
/// Service errors.
pub fn check_causal_ordering(kind: ArchKind, seed: u64) -> Result<bool> {
    let mut sites: Vec<Option<CrashSite>> = vec![None];
    sites.extend(kind.client_crash_sites().iter().copied().map(Some));
    for site in sites {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        });
        if let Some(site) = site {
            world.with_faults(|f| f.arm(site));
        }
        let mut store = Store::build(kind, &world);
        for flush in standard_flushes() {
            match store.as_store().persist(&flush) {
                Ok(()) => {}
                Err(e) if e.is_crash() => {
                    // Client restarts and retries the same flush from its
                    // local cache before moving on (PASS still holds it).
                    store.as_store().persist(&flush)?;
                }
                Err(e) => return Err(e),
            }
        }
        store.run_designed_recovery()?;
        world.settle();
        let corpus = store.corpus();
        for (object, records) in &corpus {
            for ancestor in records.iter().filter_map(ProvenanceRecord::reference) {
                if !corpus.contains_key(ancestor) {
                    let _ = object;
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Measures Q2 cost at two corpus sizes; `true` when the cost scales
/// with the result set rather than the corpus.
///
/// # Errors
///
/// Service errors.
pub fn check_efficient_query(kind: ArchKind, seed: u64) -> Result<bool> {
    let ops_at = |n_chains: u32| -> Result<u64> {
        let world = SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        });
        let mut store = Store::build(kind, &world);
        let mut obs = Observer::new();
        let mut flushes = Vec::new();
        for i in 0..n_chains {
            let pid = i * 2 + 1;
            let src = format!("raw/{i}.dat");
            let out = format!("cooked/{i}.dat");
            for ev in [
                TraceEvent::source(&src, Blob::synthetic(u64::from(i), 512)),
                TraceEvent::exec(pid, "churn", "churn", "E=1", None),
                TraceEvent::read(pid, &src),
                TraceEvent::write(pid, &out),
                TraceEvent::close(pid, &out, Blob::synthetic(u64::from(i) + 999, 256)),
                TraceEvent::exit(pid),
            ] {
                flushes.extend(obs.observe(ev).expect("well-formed"));
            }
        }
        // One blast chain hidden in the corpus: the query target.
        let pid = n_chains * 2 + 1;
        for ev in [
            TraceEvent::source("query.fa", Blob::synthetic(7, 512)),
            TraceEvent::exec(pid, "blastall", "blastall -i query.fa", "E=1", None),
            TraceEvent::read(pid, "query.fa"),
            TraceEvent::write(pid, "hits.out"),
            TraceEvent::close(pid, "hits.out", Blob::synthetic(8, 256)),
            TraceEvent::exit(pid),
        ] {
            flushes.extend(obs.observe(ev).expect("well-formed"));
        }
        for flush in &flushes {
            store.as_store().persist(flush)?;
        }
        store.run_designed_recovery()?;
        world.settle();
        let before = world.meters();
        let answer = store.as_store().query(&ProvQuery::OutputsOf {
            program: "blastall".to_string(),
        })?;
        assert_eq!(
            answer.names(),
            vec!["hits.out:1"],
            "query must find the blast output"
        );
        Ok((world.meters() - before).total_ops())
    };
    let small = ops_at(20)?;
    let large = ops_at(80)?;
    // A 4× corpus: a scan quadruples; an indexed lookup stays put. The
    // 2× threshold splits the two regimes with margin on both sides.
    Ok(large < small * 2)
}

/// Runs all four checks for one architecture.
///
/// # Errors
///
/// Service errors.
pub fn property_matrix(kind: ArchKind, seed: u64) -> Result<PropertyMatrix> {
    Ok(PropertyMatrix {
        architecture: kind.label().to_string(),
        atomicity: check_atomicity(kind, seed)?.holds(),
        consistency: check_consistency(kind, seed)?,
        causal_ordering: check_causal_ordering(kind, seed)?,
        efficient_query: check_efficient_query(kind, seed)?,
    })
}

/// Runs the full Table 1 matrix.
///
/// # Errors
///
/// Service errors.
pub fn full_property_table(seed: u64) -> Result<Vec<PropertyMatrix>> {
    ArchKind::ALL
        .iter()
        .map(|kind| property_matrix(*kind, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_flushes_cover_overflow_and_chaining() {
        let flushes = standard_flushes();
        assert!(flushes.len() >= 5);
        assert!(
            flushes
                .iter()
                .any(|f| f.records.iter().any(|r| r.byte_len() > 1024)),
            "the oversized env must force overflow handling"
        );
    }

    #[test]
    fn downcast_free_corpus_collection_compiles() {
        // Smoke: build each kind and collect the (empty) corpus.
        for kind in ArchKind::ALL {
            let world = SimWorld::counting();
            let store = Store::build(kind, &world);
            assert!(store.corpus().is_empty());
        }
    }
}

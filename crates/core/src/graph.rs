//! Provenance-graph analytics over query results.
//!
//! The paper's introduction motivates provenance with three usage
//! scenarios: audit every data set touched by a flawed tool, map corrupt
//! hardware into affected outputs, and — when one group cannot reproduce
//! another's results — *"comparing the provenance will shed insight into
//! the differences in the experiment."* This module supplies the graph
//! machinery those scenarios need on top of the query engines: ancestry
//! and descendant closures, roots/leaves, topological order, cycle
//! detection (the hazard PASS's versioning exists to avoid — Braun et
//! al., cited as [4] in the paper), Graphviz export, and a structural
//! **diff** between two provenance graphs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use pass::{ObjectRef, ProvenanceRecord};
use serde::{Deserialize, Serialize};

use crate::query::{QueryAnswer, QueryItem};

/// An immutable provenance DAG: object versions and their `input` /
/// `forkparent` edges (child → ancestor).
///
/// # Examples
///
/// ```
/// use pass::{ObjectRef, ProvenanceRecord};
/// use provenance_cloud::ProvGraph;
///
/// let graph = ProvGraph::from_records(vec![
///     (ObjectRef::new("in", 1), vec![]),
///     (ObjectRef::new("out", 1), vec![ProvenanceRecord::input(ObjectRef::new("in", 1))]),
/// ]);
/// assert_eq!(graph.len(), 2);
/// assert!(graph.ancestors(&ObjectRef::new("out", 1)).contains(&ObjectRef::new("in", 1)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvGraph {
    nodes: BTreeMap<ObjectRef, Vec<ProvenanceRecord>>,
    /// child → parents (derived from reference records).
    parents: BTreeMap<ObjectRef, BTreeSet<ObjectRef>>,
    /// parent → children (inverted index).
    children: BTreeMap<ObjectRef, BTreeSet<ObjectRef>>,
}

impl ProvGraph {
    /// Builds a graph from `(object, records)` pairs.
    pub fn from_records(
        items: impl IntoIterator<Item = (ObjectRef, Vec<ProvenanceRecord>)>,
    ) -> ProvGraph {
        let mut graph = ProvGraph::default();
        for (object, records) in items {
            for parent in records.iter().filter_map(ProvenanceRecord::reference) {
                graph
                    .parents
                    .entry(object.clone())
                    .or_default()
                    .insert(parent.clone());
                graph
                    .children
                    .entry(parent.clone())
                    .or_default()
                    .insert(object.clone());
            }
            graph.nodes.insert(object, records);
        }
        graph
    }

    /// Builds a graph from a [`QueryAnswer`] (typically
    /// [`crate::ProvQuery::ProvenanceOfAll`]).
    pub fn from_answer(answer: &QueryAnswer) -> ProvGraph {
        ProvGraph::from_records(
            answer
                .items
                .iter()
                .map(|QueryItem { object, records }| (object.clone(), records.clone())),
        )
    }

    /// Number of object versions in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The records of one node, if present.
    pub fn records(&self, object: &ObjectRef) -> Option<&[ProvenanceRecord]> {
        self.nodes.get(object).map(Vec::as_slice)
    }

    /// Iterates every node in `(name, version)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectRef, &[ProvenanceRecord])> {
        self.nodes.iter().map(|(o, r)| (o, r.as_slice()))
    }

    /// Direct ancestors of a node (referenced object versions).
    pub fn parents(&self, object: &ObjectRef) -> BTreeSet<ObjectRef> {
        self.parents.get(object).cloned().unwrap_or_default()
    }

    /// Direct descendants of a node.
    pub fn children(&self, object: &ObjectRef) -> BTreeSet<ObjectRef> {
        self.children.get(object).cloned().unwrap_or_default()
    }

    /// Transitive ancestor closure (excluding `object` itself). Includes
    /// dangling references — ancestors mentioned by records but not
    /// present as nodes — because *detecting* those is how causal-
    /// ordering violations surface.
    pub fn ancestors(&self, object: &ObjectRef) -> BTreeSet<ObjectRef> {
        self.closure(object, |o| self.parents(o))
    }

    /// Transitive descendant closure (excluding `object` itself).
    pub fn descendants(&self, object: &ObjectRef) -> BTreeSet<ObjectRef> {
        self.closure(object, |o| self.children(o))
    }

    fn closure(
        &self,
        start: &ObjectRef,
        step: impl Fn(&ObjectRef) -> BTreeSet<ObjectRef>,
    ) -> BTreeSet<ObjectRef> {
        let mut seen = BTreeSet::new();
        let mut frontier = VecDeque::from([start.clone()]);
        while let Some(current) = frontier.pop_front() {
            for next in step(&current) {
                if seen.insert(next.clone()) {
                    frontier.push_back(next);
                }
            }
        }
        seen
    }

    /// Nodes with no ancestors: the primary inputs of the experiment.
    pub fn roots(&self) -> Vec<ObjectRef> {
        self.nodes
            .keys()
            .filter(|o| self.parents(o).is_empty())
            .cloned()
            .collect()
    }

    /// Nodes nothing depends on: the final outputs.
    pub fn leaves(&self) -> Vec<ObjectRef> {
        self.nodes
            .keys()
            .filter(|o| self.children(o).is_empty())
            .cloned()
            .collect()
    }

    /// References to object versions that are not nodes of the graph —
    /// a non-empty result means causal ordering is (currently) violated.
    pub fn dangling_references(&self) -> Vec<ObjectRef> {
        let mut out = Vec::new();
        for parents in self.parents.values() {
            for p in parents {
                if !self.nodes.contains_key(p) {
                    out.push(p.clone());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Kahn topological order (ancestors before descendants), or `None`
    /// if the graph contains a cycle — which PASS versioning is designed
    /// to prevent (§2.4, and Braun et al. [4]).
    pub fn topological_order(&self) -> Option<Vec<ObjectRef>> {
        // In-degree = number of *present* parents.
        let mut indegree: BTreeMap<&ObjectRef, usize> = BTreeMap::new();
        for node in self.nodes.keys() {
            let present_parents = self
                .parents(node)
                .into_iter()
                .filter(|p| self.nodes.contains_key(p))
                .count();
            indegree.insert(node, present_parents);
        }
        let mut queue: VecDeque<&ObjectRef> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(o, _)| *o)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(node) = queue.pop_front() {
            order.push(node.clone());
            for child in self.children(node) {
                if let Some(d) = indegree.get_mut(&child) {
                    // Reborrow the key held by the map, not our temp.
                    *d -= 1;
                    if *d == 0 {
                        let (key, _) = self.nodes.get_key_value(&child).expect("node exists");
                        queue.push_back(key);
                    }
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// `true` when the graph is acyclic (the PASS invariant).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Longest ancestor-chain length in the graph (pipeline depth).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic; check [`ProvGraph::is_acyclic`]
    /// first for untrusted inputs.
    pub fn depth(&self) -> usize {
        let order = self
            .topological_order()
            .expect("depth requires an acyclic graph");
        let mut depth: BTreeMap<&ObjectRef, usize> = BTreeMap::new();
        let mut max = 0;
        for node in &order {
            let d = self
                .parents(node)
                .iter()
                .filter_map(|p| depth.get(p).copied())
                .max()
                .map(|d| d + 1)
                .unwrap_or(0);
            let (key, _) = self.nodes.get_key_value(node).expect("node in order");
            depth.insert(key, d);
            max = max.max(d);
        }
        max
    }

    /// Renders the graph in Graphviz DOT form (files as boxes, processes
    /// as ellipses).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph provenance {\n  rankdir=BT;\n");
        for (object, records) in &self.nodes {
            let is_process = records
                .iter()
                .any(|r| r.to_pair() == ("type".to_string(), "process".to_string()));
            let shape = if is_process { "ellipse" } else { "box" };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}];",
                object.render().replace('"', "\\\"")
            );
        }
        for (child, parents) in &self.parents {
            for parent in parents {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    child.render().replace('"', "\\\""),
                    parent.render().replace('"', "\\\"")
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Structural comparison with another graph — the paper's
    /// reproduction scenario: run the experiment twice, compare the
    /// provenance, and the differences explain the differing results.
    pub fn diff(&self, other: &ProvGraph) -> GraphDiff {
        let mut diff = GraphDiff::default();
        for (object, records) in &self.nodes {
            match other.nodes.get(object) {
                None => diff.only_in_left.push(object.clone()),
                Some(other_records) => {
                    let mut left: Vec<_> = records.iter().map(|r| r.to_pair()).collect();
                    let mut right: Vec<_> = other_records.iter().map(|r| r.to_pair()).collect();
                    left.sort();
                    right.sort();
                    if left != right {
                        let left_set: BTreeSet<_> = left.into_iter().collect();
                        let right_set: BTreeSet<_> = right.into_iter().collect();
                        diff.changed.push(NodeDiff {
                            object: object.clone(),
                            removed: left_set.difference(&right_set).cloned().collect(),
                            added: right_set.difference(&left_set).cloned().collect(),
                        });
                    }
                }
            }
        }
        for object in other.nodes.keys() {
            if !self.nodes.contains_key(object) {
                diff.only_in_right.push(object.clone());
            }
        }
        diff
    }
}

/// Per-node record changes found by [`ProvGraph::diff`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeDiff {
    /// The object version whose provenance differs.
    pub object: ObjectRef,
    /// `(key, value)` pairs present only in the left graph.
    pub removed: Vec<(String, String)>,
    /// `(key, value)` pairs present only in the right graph.
    pub added: Vec<(String, String)>,
}

/// Result of comparing two provenance graphs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphDiff {
    /// Object versions present only in the left graph.
    pub only_in_left: Vec<ObjectRef>,
    /// Object versions present only in the right graph.
    pub only_in_right: Vec<ObjectRef>,
    /// Object versions whose records differ.
    pub changed: Vec<NodeDiff>,
}

impl GraphDiff {
    /// `true` when the graphs are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.only_in_left.is_empty() && self.only_in_right.is_empty() && self.changed.is_empty()
    }

    /// Human-readable summary, one line per difference.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.only_in_left {
            let _ = writeln!(out, "- {} (only in first run)", o.render());
        }
        for o in &self.only_in_right {
            let _ = writeln!(out, "+ {} (only in second run)", o.render());
        }
        for c in &self.changed {
            let _ = writeln!(out, "~ {}:", c.object.render());
            for (k, v) in &c.removed {
                let _ = writeln!(out, "    - ({k}, {v})");
            }
            for (k, v) in &c.added {
                let _ = writeln!(out, "    + ({k}, {v})");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass::RecordValue;

    fn rec(k: &str, v: &str) -> ProvenanceRecord {
        ProvenanceRecord::from_pair(k, v)
    }

    /// in -> proc -> mid -> proc2 -> out, with a side branch.
    fn pipeline() -> ProvGraph {
        ProvGraph::from_records(vec![
            (ObjectRef::new("in", 1), vec![rec("type", "file")]),
            (
                ObjectRef::new("proc:1:t", 1),
                vec![rec("type", "process"), rec("input", "in:1")],
            ),
            (
                ObjectRef::new("mid", 1),
                vec![rec("type", "file"), rec("input", "proc:1:t:1")],
            ),
            (
                ObjectRef::new("proc:2:u", 1),
                vec![rec("type", "process"), rec("input", "mid:1")],
            ),
            (
                ObjectRef::new("out", 1),
                vec![rec("type", "file"), rec("input", "proc:2:u:1")],
            ),
        ])
    }

    #[test]
    fn closures() {
        let g = pipeline();
        let out = ObjectRef::new("out", 1);
        let ancestors = g.ancestors(&out);
        assert_eq!(ancestors.len(), 4);
        assert!(ancestors.contains(&ObjectRef::new("in", 1)));
        let descendants = g.descendants(&ObjectRef::new("in", 1));
        assert_eq!(descendants.len(), 4);
        assert!(descendants.contains(&out));
    }

    #[test]
    fn roots_and_leaves() {
        let g = pipeline();
        assert_eq!(g.roots(), vec![ObjectRef::new("in", 1)]);
        assert_eq!(g.leaves(), vec![ObjectRef::new("out", 1)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = pipeline();
        let order = g.topological_order().expect("acyclic");
        let pos = |name: &str| order.iter().position(|o| o.name == name).unwrap();
        assert!(pos("in") < pos("proc:1:t"));
        assert!(pos("proc:1:t") < pos("mid"));
        assert!(pos("mid") < pos("out"));
        assert!(g.is_acyclic());
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn cycles_are_detected() {
        // a depends on b depends on a — the pathology PASS versioning
        // prevents; the graph layer must still detect it.
        let g = ProvGraph::from_records(vec![
            (ObjectRef::new("a", 1), vec![rec("input", "b:1")]),
            (ObjectRef::new("b", 1), vec![rec("input", "a:1")]),
        ]);
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn dangling_references_surface() {
        let g = ProvGraph::from_records(vec![(
            ObjectRef::new("orphaned-child", 1),
            vec![rec("input", "never-stored:1")],
        )]);
        assert_eq!(
            g.dangling_references(),
            vec![ObjectRef::new("never-stored", 1)]
        );
        // Pipeline graph has none.
        assert!(pipeline().dangling_references().is_empty());
    }

    #[test]
    fn dot_export_contains_every_node_and_edge() {
        let g = pipeline();
        let dot = g.to_dot();
        assert!(dot.contains("\"out:1\" -> \"proc:2:u:1\""));
        assert!(dot.contains("\"proc:1:t:1\" [shape=ellipse]"));
        assert!(dot.contains("\"in:1\" [shape=box]"));
    }

    #[test]
    fn diff_finds_changed_inputs() {
        let left = pipeline();
        // The second run used a different version of `in`.
        let mut items: Vec<(ObjectRef, Vec<ProvenanceRecord>)> =
            left.iter().map(|(o, r)| (o.clone(), r.to_vec())).collect();
        for (object, records) in &mut items {
            if object.name == "proc:1:t" {
                for r in records.iter_mut() {
                    if r.reference().is_some() {
                        *r = ProvenanceRecord::new(
                            r.key.clone(),
                            RecordValue::Ref(ObjectRef::new("in", 2)),
                        );
                    }
                }
            }
        }
        items.push((ObjectRef::new("in", 2), vec![rec("type", "file")]));
        let right = ProvGraph::from_records(items);

        let diff = left.diff(&right);
        assert!(!diff.is_empty());
        assert_eq!(diff.only_in_right, vec![ObjectRef::new("in", 2)]);
        assert_eq!(diff.changed.len(), 1);
        assert_eq!(diff.changed[0].object.name, "proc:1:t");
        assert!(diff.render().contains("in:2"));
    }

    #[test]
    fn diff_of_identical_graphs_is_empty() {
        let d = pipeline().diff(&pipeline());
        assert!(d.is_empty());
        assert!(d.render().is_empty());
    }

    #[test]
    fn from_answer_round_trip() {
        let g = pipeline();
        let answer = QueryAnswer {
            items: g
                .iter()
                .map(|(o, r)| QueryItem {
                    object: o.clone(),
                    records: r.to_vec(),
                })
                .collect(),
        };
        assert_eq!(ProvGraph::from_answer(&answer), g);
    }
}

//! The three provenance queries of the paper's evaluation (§5, Table 3)
//! and the two engines that execute them.
//!
//! * **Q1** — given an object and version, retrieve its provenance (the
//!   paper runs it over *all* objects);
//! * **Q2** — find all files that were outputs of `blast`;
//! * **Q3** — find all the descendants of files derived from `blast`.
//!
//! The S3 engine (Architecture 1) has no search capability: it can only
//! HEAD-scan the provenance metadata of every object in the repository.
//! The SimpleDB engine (Architectures 2 and 3) uses indexed
//! `QueryWithAttributes` lookups, but has no recursive queries, so Q3
//! walks the graph one generation of `QueryWithAttributes` at a time —
//! still orders of magnitude more selective than the scan.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use pass::{ObjectRef, ProvenanceRecord, RecordKey};
use serde::{Deserialize, Serialize};
use sim_s3::{S3Error, S3};
use sim_simpledb::SimpleDb;
use simworld::SimWorld;

use crate::closure::parse_render;
use crate::error::{CloudError, Result};
use crate::layout::{
    closure_frag_name, closure_name_row, data_key, parse_data_key, BUCKET, CLOSURE_ATTR_DESC,
    CLOSURE_ATTR_FRAGS, CLOSURE_ATTR_OUT, CLOSURE_ATTR_PROC, CLOSURE_DOMAIN, DOMAIN,
};
use crate::readpath::{get_object_with_retry, overflow_to_string};
use crate::retry::RetryPolicy;
use crate::serialize::{decode_attributes, decode_metadata, read_version};

/// How many `union` predicates we pack into one SimpleDB query
/// expression when looking up many `input` values at once.
const UNION_BATCH: usize = 20;

/// A provenance query.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ProvQuery {
    /// Q1 over the whole repository: provenance of every stored object
    /// version.
    ProvenanceOfAll,
    /// Q1 for one object version.
    ProvenanceOf {
        /// Object name.
        name: String,
        /// Version.
        version: u32,
    },
    /// Q2: all files that were outputs of the program (direct children
    /// of any process version running it).
    OutputsOf {
        /// Executable name, e.g. `blastall`.
        program: String,
    },
    /// Q3: everything derived, transitively, from the outputs of the
    /// program.
    DescendantsOf {
        /// Executable name.
        program: String,
    },
}

/// One hit: an object version and its provenance records.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryItem {
    /// The object version.
    pub object: ObjectRef,
    /// Its provenance.
    pub records: Vec<ProvenanceRecord>,
}

/// The result set of a [`ProvQuery`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QueryAnswer {
    /// Matching object versions, in deterministic (name, version) order.
    pub items: Vec<QueryItem>,
}

impl QueryAnswer {
    fn from_map(map: BTreeMap<ObjectRef, Vec<ProvenanceRecord>>) -> QueryAnswer {
        QueryAnswer {
            items: map
                .into_iter()
                .map(|(object, records)| QueryItem { object, records })
                .collect(),
        }
    }

    /// Number of hits.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The rendered `name:version` of every hit.
    pub fn names(&self) -> Vec<String> {
        self.items.iter().map(|i| i.object.render()).collect()
    }
}

// --- helpers shared by both engines ---

/// The value of the first `name` record, if any.
fn name_record(records: &[ProvenanceRecord]) -> Option<&str> {
    records.iter().find_map(|r| match (&r.key, &r.value) {
        (RecordKey::Name, pass::RecordValue::Text(t)) => Some(t.as_str()),
        _ => None,
    })
}

/// `true` when the records mark a process running `program`.
fn is_process_named(records: &[ProvenanceRecord], program: &str) -> bool {
    let is_process = records.iter().any(|r| {
        r.key == RecordKey::Type && matches!(&r.value, pass::RecordValue::Text(t) if t == "process")
    });
    is_process && name_record(records) == Some(program)
}

/// `true` when the records mark a file.
fn is_file(records: &[ProvenanceRecord]) -> bool {
    records.iter().any(|r| {
        r.key == RecordKey::Type && matches!(&r.value, pass::RecordValue::Text(t) if t == "file")
    })
}

/// Escapes a value for the SimpleDB query language ('' doubling).
fn quote(value: &str) -> String {
    value.replace('\'', "''")
}

// --- the S3 scan engine (Architecture 1) ---

/// Query engine over provenance stored as S3 metadata. Every query is a
/// full HEAD scan — §4.1: "we might need to iterate over the provenance
/// of every object in the repository, which is so inefficient as to be
/// impractical".
#[derive(Clone, Debug)]
pub struct S3QueryEngine {
    s3: S3,
    world: SimWorld,
    retry: RetryPolicy,
}

impl S3QueryEngine {
    /// An engine reading from `s3`, retrying stale overflow GETs under
    /// `retry`.
    pub fn new(s3: &S3, world: &SimWorld, retry: RetryPolicy) -> S3QueryEngine {
        S3QueryEngine {
            s3: s3.clone(),
            world: world.clone(),
            retry,
        }
    }

    /// Executes a query.
    ///
    /// # Errors
    ///
    /// S3 service errors.
    pub fn execute(&self, query: &ProvQuery) -> Result<QueryAnswer> {
        match query {
            ProvQuery::ProvenanceOf { name, version } => {
                let mut map = BTreeMap::new();
                if let Some((object, records)) = self.head_one(name)? {
                    if object.version == *version {
                        map.insert(object, records);
                    }
                }
                Ok(QueryAnswer::from_map(map))
            }
            ProvQuery::ProvenanceOfAll => Ok(QueryAnswer::from_map(self.scan()?)),
            ProvQuery::OutputsOf { program } => {
                let corpus = self.scan()?;
                Ok(QueryAnswer::from_map(outputs_of(&corpus, program)))
            }
            ProvQuery::DescendantsOf { program } => {
                let corpus = self.scan()?;
                Ok(QueryAnswer::from_map(descendants_of(&corpus, program)))
            }
        }
    }

    /// HEAD one object and decode its provenance (overflow values are
    /// fetched with GETs).
    fn head_one(&self, name: &str) -> Result<Option<(ObjectRef, Vec<ProvenanceRecord>)>> {
        let head = match self.s3.head_object(BUCKET, &data_key(name)) {
            Ok(h) => h,
            Err(S3Error::NoSuchKey { .. }) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let version = read_version(&head.metadata)?;
        let records = decode_metadata(&head.metadata, |key| self.fetch_overflow(key))?;
        Ok(Some((ObjectRef::new(name.to_string(), version), records)))
    }

    /// One overflow chunk, with stale-replica GETs retried.
    fn fetch_overflow(&self, key: &str) -> Result<String> {
        let obj = get_object_with_retry(&self.s3, &self.world, &self.retry, key, key)?;
        overflow_to_string(key, obj)
    }

    /// The full repository scan: LIST pages + one HEAD per object.
    fn scan(&self) -> Result<BTreeMap<ObjectRef, Vec<ProvenanceRecord>>> {
        let mut out = BTreeMap::new();
        for summary in self.s3.list_all(BUCKET, crate::layout::DATA_PREFIX)? {
            let Some(name) = parse_data_key(&summary.key) else {
                continue;
            };
            if let Some((object, records)) = self.head_one(name)? {
                out.insert(object, records);
            }
        }
        Ok(out)
    }
}

// --- the SimpleDB engine (Architectures 2 and 3) ---

/// Query engine over provenance stored as SimpleDB items.
#[derive(Clone, Debug)]
pub struct SimpleDbQueryEngine {
    db: SimpleDb,
    s3: S3,
    world: SimWorld,
    retry: RetryPolicy,
    /// Serve Q3 from the materialized closure index ([`CLOSURE_DOMAIN`])
    /// instead of the generation-at-a-time walk.
    serve_closure: bool,
}

impl SimpleDbQueryEngine {
    /// An engine reading items from `db` and overflow values from `s3`,
    /// retrying stale overflow GETs under `retry`.
    pub fn new(
        db: &SimpleDb,
        s3: &S3,
        world: &SimWorld,
        retry: RetryPolicy,
    ) -> SimpleDbQueryEngine {
        SimpleDbQueryEngine {
            db: db.clone(),
            s3: s3.clone(),
            world: world.clone(),
            retry,
            serve_closure: false,
        }
    }

    /// Switches Q3 to the closure-index path: point reads over
    /// [`CLOSURE_DOMAIN`] — O(answer) requests — instead of one
    /// domain-scanning `QueryWithAttributes` per frontier node. The
    /// other queries are unchanged.
    pub fn serving_closure(mut self) -> SimpleDbQueryEngine {
        self.serve_closure = true;
        self
    }

    /// Executes a query.
    ///
    /// # Errors
    ///
    /// SimpleDB/S3 service errors.
    pub fn execute(&self, query: &ProvQuery) -> Result<QueryAnswer> {
        match query {
            ProvQuery::ProvenanceOf { name, version } => {
                let object = ObjectRef::new(name.clone(), *version);
                let mut map = BTreeMap::new();
                if let Some(records) = self.fetch_item(&object)? {
                    map.insert(object, records);
                }
                Ok(QueryAnswer::from_map(map))
            }
            ProvQuery::ProvenanceOfAll => {
                // No way to generalise: enumerate items, then one
                // GetAttributes per item (the paper's ~72K ops for Q1).
                let mut map = BTreeMap::new();
                let mut token: Option<String> = None;
                loop {
                    let page = self.db.query(DOMAIN, None, Some(250), token.as_deref())?;
                    for item_name in &page.item_names {
                        let Some(object) = ObjectRef::parse_item_name(item_name) else {
                            continue;
                        };
                        if let Some(records) = self.fetch_item(&object)? {
                            map.insert(object, records);
                        }
                    }
                    match page.next_token {
                        Some(t) => token = Some(t),
                        None => break,
                    }
                }
                Ok(QueryAnswer::from_map(map))
            }
            ProvQuery::OutputsOf { program } => {
                Ok(QueryAnswer::from_map(self.outputs_of(program)?))
            }
            ProvQuery::DescendantsOf { program } => {
                if self.serve_closure {
                    return Ok(QueryAnswer::from_map(self.descendants_via_index(program)?));
                }
                // Q3 = Q2 seeds, then one generation at a time; SimpleDB
                // "does not support recursive queries or stored
                // procedures" (§5).
                let seeds = self.outputs_of(program)?;
                let mut visited: BTreeSet<ObjectRef> = seeds.keys().cloned().collect();
                let mut result: BTreeMap<ObjectRef, Vec<ProvenanceRecord>> = BTreeMap::new();
                let mut frontier: VecDeque<ObjectRef> = seeds.keys().cloned().collect();
                while let Some(parent) = frontier.pop_front() {
                    // One QueryWithAttributes per frontier item, as the
                    // paper describes. Objects already visited are
                    // skipped before decoding, so a diamond in the graph
                    // costs one record fetch, not one per path.
                    let expr = format!("['input' = '{}']", quote(&parent.render()));
                    let children = self.query_children(&expr, &visited)?;
                    for (object, records) in children {
                        if visited.insert(object.clone()) {
                            frontier.push_back(object.clone());
                            result.insert(object, records);
                        }
                    }
                }
                Ok(QueryAnswer::from_map(result))
            }
        }
    }

    /// Q2 in two indexed phases (§5): find the program's process
    /// versions, then everything that lists one of them as `input`.
    fn outputs_of(&self, program: &str) -> Result<BTreeMap<ObjectRef, Vec<ProvenanceRecord>>> {
        let phase1 = format!(
            "['type' = 'process'] intersection ['name' = '{}']",
            quote(program)
        );
        let processes = self.query_all_pages(&phase1)?;
        let mut outputs = BTreeMap::new();
        let refs: Vec<String> = processes.keys().map(|o| o.render()).collect();
        for batch in refs.chunks(UNION_BATCH) {
            let expr = batch
                .iter()
                .map(|r| format!("['input' = '{}']", quote(r)))
                .collect::<Vec<_>>()
                .join(" union ");
            for (object, records) in self.query_all_pages(&expr)? {
                if is_file(&records) {
                    outputs.insert(object, records);
                }
            }
        }
        Ok(outputs)
    }

    /// Q3 over the closure index: every step is a point read.
    ///
    /// 1. the name row lists the program's process versions;
    /// 2. their `o` values are the seed files (the walk's Q2 phase);
    /// 3. the seeds' `d` values are the transitive descendants;
    /// 4. one `GetAttributes` per answer object fetches its records.
    ///
    /// Requests scale with the answer, never with the corpus. The
    /// answer matches the walk engine item for item: the index
    /// maintains exactly the walk's edge relation (stored inline
    /// `input` values that round-trip as refs), and seeds are excluded
    /// from the result just as the walk pre-loads them into `visited`.
    fn descendants_via_index(
        &self,
        program: &str,
    ) -> Result<BTreeMap<ObjectRef, Vec<ProvenanceRecord>>> {
        let procs = self.closure_row_values(&closure_name_row(program), CLOSURE_ATTR_PROC)?;
        let mut seeds: BTreeSet<String> = BTreeSet::new();
        for proc in &procs {
            if let Some(obj) = parse_render(proc) {
                seeds.extend(self.closure_row_values(&obj.item_name(), CLOSURE_ATTR_OUT)?);
            }
        }
        let mut hits: BTreeSet<String> = BTreeSet::new();
        for seed in &seeds {
            if let Some(obj) = parse_render(seed) {
                hits.extend(self.closure_row_values(&obj.item_name(), CLOSURE_ATTR_DESC)?);
            }
        }
        let mut result = BTreeMap::new();
        for hit in hits.difference(&seeds) {
            let Some(object) = parse_render(hit) else {
                continue;
            };
            // A missing main-domain item here is a stale phantom (the
            // closure outlived a deleted row); skip it rather than fail.
            if let Some(records) = self.fetch_item(&object)? {
                result.insert(object, records);
            }
        }
        Ok(result)
    }

    /// All values of `attr` on one logical closure row: the base item
    /// plus every fragment the base's `f` list names. An absent row —
    /// or an index domain that was never created — contributes nothing.
    fn closure_row_values(&self, item: &str, attr: &str) -> Result<BTreeSet<String>> {
        let base = match self.db.get_attributes(CLOSURE_DOMAIN, item, None) {
            Ok(attrs) => attrs,
            Err(sim_simpledb::SdbError::NoSuchDomain { .. }) => return Ok(BTreeSet::new()),
            Err(e) => return Err(CloudError::from(e)),
        };
        let mut values: BTreeSet<String> = base
            .iter()
            .filter(|a| a.name == attr)
            .map(|a| a.value.clone())
            .collect();
        let buckets: BTreeSet<u64> = base
            .iter()
            .filter(|a| a.name == CLOSURE_ATTR_FRAGS)
            .filter_map(|a| a.value.parse().ok())
            .collect();
        for bucket in buckets {
            let frag =
                self.db
                    .get_attributes(CLOSURE_DOMAIN, &closure_frag_name(item, bucket), None)?;
            values.extend(
                frag.iter()
                    .filter(|a| a.name == attr)
                    .map(|a| a.value.clone()),
            );
        }
        Ok(values)
    }

    /// Runs one QueryWithAttributes expression across all pages,
    /// skipping the decode (and its overflow GETs) for objects already
    /// in `skip`.
    fn query_children(
        &self,
        expr: &str,
        skip: &BTreeSet<ObjectRef>,
    ) -> Result<BTreeMap<ObjectRef, Vec<ProvenanceRecord>>> {
        let mut out = BTreeMap::new();
        let mut token: Option<String> = None;
        loop {
            let page = self.db.query_with_attributes(
                DOMAIN,
                Some(expr),
                None,
                Some(250),
                token.as_deref(),
            )?;
            for item in &page.items {
                let Some(object) = ObjectRef::parse_item_name(&item.name) else {
                    continue;
                };
                if skip.contains(&object) || out.contains_key(&object) {
                    continue;
                }
                let records = decode_attributes(&item.attributes, |key| self.fetch_overflow(key))?;
                out.insert(object, records);
            }
            match page.next_token {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        Ok(out)
    }

    /// Runs one QueryWithAttributes expression across all pages.
    fn query_all_pages(&self, expr: &str) -> Result<BTreeMap<ObjectRef, Vec<ProvenanceRecord>>> {
        let mut out = BTreeMap::new();
        let mut token: Option<String> = None;
        loop {
            let page = self.db.query_with_attributes(
                DOMAIN,
                Some(expr),
                None,
                Some(250),
                token.as_deref(),
            )?;
            for item in &page.items {
                let Some(object) = ObjectRef::parse_item_name(&item.name) else {
                    continue;
                };
                let records = decode_attributes(&item.attributes, |key| self.fetch_overflow(key))?;
                out.insert(object, records);
            }
            match page.next_token {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        Ok(out)
    }

    /// GetAttributes for one item; `None` when the item does not exist.
    fn fetch_item(&self, object: &ObjectRef) -> Result<Option<Vec<ProvenanceRecord>>> {
        let attrs = self.db.get_attributes(DOMAIN, &object.item_name(), None)?;
        if attrs.is_empty() {
            return Ok(None);
        }
        Ok(Some(decode_attributes(&attrs, |key| {
            self.fetch_overflow(key)
        })?))
    }

    fn fetch_overflow(&self, key: &str) -> Result<String> {
        let obj = get_object_with_retry(&self.s3, &self.world, &self.retry, key, key)?;
        overflow_to_string(key, obj)
    }
}

// --- pure-graph evaluation shared by the S3 scan path ---

/// Q2 evaluated over an in-memory corpus (used after the S3 full scan).
fn outputs_of(
    corpus: &BTreeMap<ObjectRef, Vec<ProvenanceRecord>>,
    program: &str,
) -> BTreeMap<ObjectRef, Vec<ProvenanceRecord>> {
    let processes: BTreeSet<ObjectRef> = corpus
        .iter()
        .filter(|(_, records)| is_process_named(records, program))
        .map(|(object, _)| object.clone())
        .collect();
    corpus
        .iter()
        .filter(|(_, records)| {
            is_file(records)
                && records
                    .iter()
                    .filter_map(ProvenanceRecord::reference)
                    .any(|r| processes.contains(r))
        })
        .map(|(o, r)| (o.clone(), r.clone()))
        .collect()
}

/// Q3 evaluated over an in-memory corpus.
fn descendants_of(
    corpus: &BTreeMap<ObjectRef, Vec<ProvenanceRecord>>,
    program: &str,
) -> BTreeMap<ObjectRef, Vec<ProvenanceRecord>> {
    let seeds = outputs_of(corpus, program);
    // Build the child index: parent -> children.
    let mut children: BTreeMap<&ObjectRef, Vec<&ObjectRef>> = BTreeMap::new();
    for (object, records) in corpus {
        for parent in records.iter().filter_map(ProvenanceRecord::reference) {
            children.entry(parent).or_default().push(object);
        }
    }
    let mut visited: BTreeSet<ObjectRef> = seeds.keys().cloned().collect();
    let mut frontier: VecDeque<ObjectRef> = seeds.keys().cloned().collect();
    let mut result = BTreeMap::new();
    while let Some(parent) = frontier.pop_front() {
        if let Some(kids) = children.get(&parent) {
            for kid in kids {
                if visited.insert((*kid).clone()) {
                    frontier.push_back((*kid).clone());
                    result.insert((*kid).clone(), corpus[*kid].clone());
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> ProvenanceRecord {
        ProvenanceRecord::from_pair(k, v)
    }

    fn corpus() -> BTreeMap<ObjectRef, Vec<ProvenanceRecord>> {
        // in.fa:1 -> proc blastall:1 -> hits.txt:1 -> proc awk:1 -> top.txt:1
        //                            -> log.txt:1 (also from blastall)
        // unrelated.txt:1 from proc cp:1
        let mut m = BTreeMap::new();
        m.insert(
            ObjectRef::new("in.fa", 1),
            vec![rec("type", "file"), rec("name", "in.fa")],
        );
        m.insert(
            ObjectRef::new("proc:1:blastall", 1),
            vec![
                rec("type", "process"),
                rec("name", "blastall"),
                rec("input", "in.fa:1"),
            ],
        );
        m.insert(
            ObjectRef::new("hits.txt", 1),
            vec![
                rec("type", "file"),
                rec("name", "hits.txt"),
                rec("input", "proc:1:blastall:1"),
            ],
        );
        m.insert(
            ObjectRef::new("log.txt", 1),
            vec![
                rec("type", "file"),
                rec("name", "log.txt"),
                rec("input", "proc:1:blastall:1"),
            ],
        );
        m.insert(
            ObjectRef::new("proc:2:awk", 1),
            vec![
                rec("type", "process"),
                rec("name", "awk"),
                rec("input", "hits.txt:1"),
            ],
        );
        m.insert(
            ObjectRef::new("top.txt", 1),
            vec![
                rec("type", "file"),
                rec("name", "top.txt"),
                rec("input", "proc:2:awk:1"),
            ],
        );
        m.insert(
            ObjectRef::new("proc:3:cp", 1),
            vec![rec("type", "process"), rec("name", "cp")],
        );
        m.insert(
            ObjectRef::new("unrelated.txt", 1),
            vec![
                rec("type", "file"),
                rec("name", "unrelated.txt"),
                rec("input", "proc:3:cp:1"),
            ],
        );
        m
    }

    #[test]
    fn outputs_of_finds_direct_children_files_only() {
        let result = outputs_of(&corpus(), "blastall");
        let names: Vec<String> = result.keys().map(|o| o.render()).collect();
        assert_eq!(names, vec!["hits.txt:1", "log.txt:1"]);
    }

    #[test]
    fn outputs_of_unknown_program_is_empty() {
        assert!(outputs_of(&corpus(), "nonexistent").is_empty());
    }

    #[test]
    fn descendants_walk_through_processes() {
        let result = descendants_of(&corpus(), "blastall");
        let names: Vec<String> = result.keys().map(|o| o.render()).collect();
        // Descendants of {hits.txt, log.txt}: the awk process and top.txt.
        assert_eq!(names, vec!["proc:2:awk:1", "top.txt:1"]);
    }

    #[test]
    fn descendants_exclude_unrelated_branches() {
        let result = descendants_of(&corpus(), "blastall");
        assert!(!result.keys().any(|o| o.name == "unrelated.txt"));
        assert!(
            !result.keys().any(|o| o.name == "in.fa"),
            "ancestors are not descendants"
        );
    }

    #[test]
    fn query_answer_accessors() {
        let ans = QueryAnswer::from_map(corpus());
        assert_eq!(ans.len(), 8);
        assert!(!ans.is_empty());
        assert_eq!(ans.names().len(), 8);
        assert!(QueryAnswer::default().is_empty());
    }

    #[test]
    fn quote_escapes_quotes() {
        assert_eq!(quote("o'brien"), "o''brien");
    }

    #[test]
    fn helper_predicates() {
        let c = corpus();
        let blast = &c[&ObjectRef::new("proc:1:blastall", 1)];
        assert!(is_process_named(blast, "blastall"));
        assert!(!is_process_named(blast, "awk"));
        assert!(!is_file(blast));
        let hits = &c[&ObjectRef::new("hits.txt", 1)];
        assert!(is_file(hits));
        assert!(!is_process_named(hits, "hits.txt"));
    }
}

//! Architecture 1 — **Standalone S3** (§4.1).
//!
//! PASS uses S3 as the storage layer for both data and provenance: each
//! file maps to one S3 object and the provenance rides as the object's
//! user metadata on the *same* PUT. That single call makes the pair
//! atomic and mutually consistent (read correctness holds by
//! construction), and causal ordering holds because flushes arrive in
//! ancestor-first order. The price is the query path: the only way to
//! read provenance is a HEAD per object, so any search is a full scan.
//!
//! Records larger than 1 KB are stored as separate S3 objects to stay
//! under the 2 KB metadata cap (§5); so are the largest remaining records
//! if the total still exceeds the cap (§4.1 discusses why this workaround
//! is unattractive).

use pass::{CacheDir, FileFlush, ObjectRef};
use sim_s3::{Metadata, S3Error, S3};
use simworld::{CrashSite, SimWorld};

use crate::error::Result;
use crate::layout::{data_key, BUCKET, PROV_PREFIX};
use crate::query::{ProvQuery, QueryAnswer, S3QueryEngine};
use crate::readpath::{get_object_with_retry, overflow_to_string};
use crate::retry::{with_throttle_retry, RetryPolicy};
use crate::serialize::{decode_metadata, encode_metadata, encode_records, read_version};
use crate::store::{ProvenanceStore, ReadOutcome, ReadStatus, RecoveryReport};

/// Crash site: client dies before storing an overflow object.
pub const A1_BEFORE_OVERFLOW_PUT: CrashSite = CrashSite::new("arch1.before_overflow_put");

/// Crash site: client dies after the overflow objects but before the
/// data+provenance PUT.
pub const A1_BEFORE_DATA_PUT: CrashSite = CrashSite::new("arch1.before_data_put");

/// The Standalone-S3 provenance store.
///
/// # Examples
///
/// ```
/// use pass::FileFlush;
/// use provenance_cloud::{ProvenanceStore, StandaloneS3};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let mut store = StandaloneS3::new(&world);
/// let flush = FileFlush::builder("a.txt").data(Blob::from("hi")).build();
/// store.persist(&flush)?;
/// let read = store.read("a.txt")?;
/// assert!(read.consistent());
/// # Ok::<(), provenance_cloud::CloudError>(())
/// ```
#[derive(Debug)]
pub struct StandaloneS3 {
    world: SimWorld,
    s3: S3,
    cache: CacheDir,
    retry: RetryPolicy,
}

impl StandaloneS3 {
    /// Creates the store with its own S3 endpoint and bucket (default
    /// S3 shard count).
    pub fn new(world: &SimWorld) -> StandaloneS3 {
        StandaloneS3::with_shards(world, sim_s3::DEFAULT_SHARDS)
    }

    /// Creates the store with an S3 endpoint whose buckets are split
    /// into `shards` hash shards — the knob behind the concurrent
    /// multi-client experiments.
    pub fn with_shards(world: &SimWorld, shards: usize) -> StandaloneS3 {
        StandaloneS3::with_shard_plan(world, simworld::ShardPlan::fixed(shards))
    }

    /// Creates the store with an S3 endpoint provisioned per `plan` —
    /// initial shard count plus an optional hot-shard split policy.
    pub fn with_shard_plan(world: &SimWorld, plan: simworld::ShardPlan) -> StandaloneS3 {
        let s3 = S3::with_shard_plan(world, plan);
        s3.create_bucket(BUCKET)
            .expect("fresh endpoint has no buckets");
        StandaloneS3::with_s3(world, &s3)
    }

    /// Creates the store over an existing S3 endpoint (the bucket must
    /// exist).
    pub fn with_s3(world: &SimWorld, s3: &S3) -> StandaloneS3 {
        StandaloneS3 {
            world: world.clone(),
            s3: s3.clone(),
            cache: CacheDir::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the read-retry policy.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The underlying S3 handle (shared).
    pub fn s3(&self) -> &S3 {
        &self.s3
    }

    /// The local cache directory.
    pub fn cache(&self) -> &CacheDir {
        &self.cache
    }
}

impl ProvenanceStore for StandaloneS3 {
    fn architecture(&self) -> &'static str {
        "s3"
    }

    /// §4.1 protocol: (1) read the cache files, (2) convert provenance to
    /// attribute-value pairs, (3) one PUT carrying object + provenance.
    fn persist(&mut self, flush: &FileFlush) -> Result<()> {
        // Step 1: the flush *is* the cache content; mirror it locally.
        self.cache.store(flush);

        // Step 2: serialise, spilling oversized records.
        let encoded = encode_records(&flush.object, &flush.records);
        let (metadata, overflows) = encode_metadata(&flush.object, encoded);
        for (key, blob) in overflows {
            self.world.crash_point(A1_BEFORE_OVERFLOW_PUT)?;
            with_throttle_retry(&self.world, &self.retry, || {
                Ok(self
                    .s3
                    .put_object(BUCKET, &key, blob.clone(), Metadata::new())?)
            })?;
        }

        // Step 3: data and provenance in a single PUT — the atomicity
        // story of this architecture.
        self.world.crash_point(A1_BEFORE_DATA_PUT)?;
        with_throttle_retry(&self.world, &self.retry, || {
            Ok(self.s3.put_object(
                BUCKET,
                &data_key(&flush.object.name),
                flush.data.clone(),
                metadata.clone(),
            )?)
        })?;
        Ok(())
    }

    fn read(&mut self, name: &str) -> Result<ReadOutcome> {
        let key = data_key(name);
        let object = get_object_with_retry(&self.s3, &self.world, &self.retry, &key, name)?;
        let version = read_version(&object.metadata)?;
        // Overflow chunks ride the same retry: they were PUT before the
        // main object, but a different replica may serve their GET.
        let records = decode_metadata(&object.metadata, |k| {
            let o = get_object_with_retry(&self.s3, &self.world, &self.retry, k, k)?;
            overflow_to_string(k, o)
        })?;
        Ok(ReadOutcome {
            object: ObjectRef::new(name.to_string(), version),
            data: object.body,
            records,
            status: ReadStatus::AtomicUnit,
        })
    }

    fn query(&mut self, query: &ProvQuery) -> Result<QueryAnswer> {
        S3QueryEngine::new(&self.s3, &self.world, self.retry).execute(query)
    }

    /// Architecture 1 has no protocol-level recovery to run; the only
    /// residue a crash can leave is orphaned overflow objects (stored
    /// before the main PUT that never happened). This scan deletes
    /// overflow objects describing versions newer than the object they
    /// belong to.
    fn recover(&mut self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        for summary in self.s3.list_all(BUCKET, PROV_PREFIX)? {
            report.items_scanned += 1;
            // Key shape: prov/{name} {version}/{idx}
            let Some(rest) = summary.key.strip_prefix(PROV_PREFIX) else {
                continue;
            };
            let Some((item_name, _idx)) = rest.rsplit_once('/') else {
                continue;
            };
            let Some(object) = ObjectRef::parse_item_name(item_name) else {
                continue;
            };
            let current = match self.s3.head_object(BUCKET, &data_key(&object.name)) {
                Ok(head) => Some(read_version(&head.metadata)?),
                Err(S3Error::NoSuchKey { .. }) => None,
                Err(e) => return Err(e.into()),
            };
            // Live overflow objects describe the version the data object
            // currently has; anything else is residue.
            if current != Some(object.version) {
                self.s3.delete_object(BUCKET, &summary.key)?;
                report.objects_removed += 1;
            }
        }
        Ok(report)
    }
}

//! The serving facade: a thread-safe, shared handle over a
//! [`ProvenanceStore`].
//!
//! The store trait itself is object-safe but `&mut self` throughout —
//! the right shape for a single-client experiment driver, and the wrong
//! one for a network frontend where N connection-handler threads want
//! to serve reads and queries concurrently. [`ServeHandle`] fixes the
//! seam without touching the trait:
//!
//! * **Writes** (record / flush / recover) serialize through one
//!   internal mutex around the boxed store — exactly the §4 protocols,
//!   one writer at a time, unchanged crash-ordering story.
//! * **Reads and queries** never touch that mutex. The handle captures
//!   cloned service handles ([`ServeParts`]) at construction and builds
//!   a fresh [`ReadContext`]/[`SimpleDbQueryEngine`] per call, so they
//!   take `&self` and contend only on the services' own per-shard
//!   locks — the concurrency the sharding layer (PRs 2–3, 8) was built
//!   to exploit.
//!
//! The handle is `Clone + Send + Sync`; every clone shares the same
//! store. [`ServeHandle::fingerprint`] hashes the authoritative
//! data/provenance state (temporaries excluded), which is how the
//! wall-clock harness proves a networked run converged to the same
//! bytes as an in-process one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use pass::FileFlush;
use sim_s3::S3;
use sim_simpledb::SimpleDb;
use simworld::{fnv1a_64, SimWorld};

use crate::error::Result;
use crate::layout::{BUCKET, CLOSURE_DOMAIN, DOMAIN, TMP_PREFIX};
use crate::query::{ProvQuery, QueryAnswer, SimpleDbQueryEngine};
use crate::readpath::{verified_read, ReadContext};
use crate::retry::RetryPolicy;
use crate::store::{ProvenanceStore, ReadOutcome, RecoveryReport};

/// The cloned service handles and read-path knobs a [`ServeHandle`]
/// captures from a store at construction. Produced by
/// [`Serveable::serve_parts`]; opaque outside the crate.
#[derive(Clone, Debug)]
pub struct ServeParts {
    pub(crate) world: SimWorld,
    pub(crate) s3: S3,
    pub(crate) db: SimpleDb,
    pub(crate) retry: RetryPolicy,
    pub(crate) verify_md5: bool,
    pub(crate) use_nonce: bool,
    pub(crate) serve_closure: bool,
}

/// A store that can hand out the pieces of its (lock-free) read path,
/// making it servable through [`ServeHandle`]. Implemented by the two
/// architectures whose read side is the shared §4.2 verified read.
pub trait Serveable: ProvenanceStore + Send {
    /// Snapshots the service handles and read configuration. The parts
    /// are clones sharing state with the store, so reads built from
    /// them observe every subsequent write.
    fn serve_parts(&self) -> ServeParts;
}

/// A point-in-time counter/meter summary of a serving store, plus the
/// state fingerprint. What the wire protocol's `Stats` command returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Architecture name (`"s3+simpledb"` or `"s3+simpledb+sqs"`).
    pub architecture: String,
    /// Requests served through this handle (all commands).
    pub requests: u64,
    /// Total billable service operations in the underlying world.
    pub store_ops: u64,
    /// Bytes the simulated services ingested.
    pub bytes_in: u64,
    /// Bytes the simulated services returned.
    pub bytes_out: u64,
    /// Authoritative state fingerprint ([`ServeHandle::fingerprint`]).
    pub fingerprint: u64,
}

struct ServeInner {
    arch: &'static str,
    parts: ServeParts,
    writer: Mutex<Box<dyn ProvenanceStore + Send>>,
    requests: AtomicU64,
}

impl std::fmt::Debug for ServeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeInner")
            .field("arch", &self.arch)
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The coherent serving surface over a provenance store: record /
/// flush / read / query / stats, all through `&self`.
///
/// # Examples
///
/// ```
/// use pass::FileFlush;
/// use provenance_cloud::{ProvQuery, S3SimpleDb, ServeHandle};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let serve = ServeHandle::new(S3SimpleDb::new(&world));
///
/// let input = FileFlush::builder("census/raw.csv")
///     .data(Blob::synthetic(1, 64 * 1024))
///     .build();
/// let output = FileFlush::builder("census/trends.csv")
///     .data(Blob::synthetic(2, 8 * 1024))
///     .record("input", "census/raw.csv:1")
///     .build();
/// serve.record(&input)?;
/// serve.record(&output)?;
/// serve.flush()?;
///
/// // Reads and queries take &self: clone the handle into as many
/// // threads as you like.
/// let read = serve.read("census/trends.csv")?;
/// assert!(read.consistent());
/// let answer = serve.query(&ProvQuery::ProvenanceOf {
///     name: "census/trends.csv".into(),
///     version: 1,
/// })?;
/// assert_eq!(answer.len(), 1);
/// # Ok::<(), provenance_cloud::CloudError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ServeHandle {
    inner: Arc<ServeInner>,
}

impl ServeHandle {
    /// Wraps a store for serving. The handle captures the store's
    /// read-path configuration *now*; reconfigure before wrapping.
    pub fn new<S: Serveable + 'static>(store: S) -> ServeHandle {
        let arch = store.architecture();
        let parts = store.serve_parts();
        ServeHandle {
            inner: Arc::new(ServeInner {
                arch,
                parts,
                writer: Mutex::new(Box::new(store)),
                requests: AtomicU64::new(0),
            }),
        }
    }

    fn count(&self) {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn writer(&self) -> std::sync::MutexGuard<'_, Box<dyn ProvenanceStore + Send>> {
        // A panicking writer thread poisons the lock; the store itself
        // holds no client-side invariants that a panic could tear (all
        // durable state lives in the services), so serving continues.
        self.inner
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Architecture name of the wrapped store.
    pub fn architecture(&self) -> &'static str {
        self.inner.arch
    }

    /// Persists one flush (the store's `persist`), serialized with
    /// other writers.
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::persist`].
    pub fn record(&self, flush: &FileFlush) -> Result<()> {
        self.count();
        self.writer().persist(flush)
    }

    /// Persists a group of flushes through the store's batched path.
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::persist_batch`].
    pub fn record_batch(&self, flushes: &[FileFlush]) -> Result<()> {
        self.count();
        self.writer().persist_batch(flushes)
    }

    /// Drives background daemons until quiescent (arch3's commit
    /// daemon; a no-op for arch2).
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::run_daemons_until_idle`].
    pub fn flush(&self) -> Result<()> {
        self.count();
        self.writer().run_daemons_until_idle()
    }

    /// Runs the architecture's recovery pass.
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::recover`].
    pub fn recover(&self) -> Result<RecoveryReport> {
        self.count();
        self.writer().recover()
    }

    /// The §4.2 verified read, built fresh from the captured parts —
    /// no handle-level lock, so N threads read concurrently against
    /// the services' per-shard locks.
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::read`].
    pub fn read(&self, name: &str) -> Result<ReadOutcome> {
        self.count();
        let p = &self.inner.parts;
        let ctx = ReadContext {
            world: &p.world,
            s3: &p.s3,
            db: &p.db,
            retry: p.retry,
            verify_md5: p.verify_md5,
            use_nonce: p.use_nonce,
        };
        verified_read(&ctx, name)
    }

    /// Executes a provenance query on a per-call engine (closure-index
    /// `Serve` mode included when the store was configured for it).
    ///
    /// # Errors
    ///
    /// As [`ProvenanceStore::query`].
    pub fn query(&self, query: &ProvQuery) -> Result<QueryAnswer> {
        self.count();
        let p = &self.inner.parts;
        let mut engine = SimpleDbQueryEngine::new(&p.db, &p.s3, &p.world, p.retry);
        if p.serve_closure {
            engine = engine.serving_closure();
        }
        engine.execute(query)
    }

    /// Requests served through this handle so far.
    pub fn requests(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// The authoritative state fingerprint: FNV-1a over every committed
    /// provenance item (provenance + closure domains) and every live,
    /// non-temporary S3 object (key, ETag, metadata), all in sorted
    /// order. Placement-, RNG- and interleaving-invariant: two runs
    /// that committed the same logical state hash identically, however
    /// their requests raced.
    pub fn fingerprint(&self) -> u64 {
        store_fingerprint(&self.inner.parts.s3, &self.inner.parts.db)
    }

    /// Counter/meter snapshot plus the current fingerprint.
    pub fn stats(&self) -> ServeStats {
        self.count();
        let meters = self.inner.parts.world.meters();
        ServeStats {
            architecture: self.inner.arch.to_string(),
            requests: self.requests(),
            store_ops: meters.total_ops(),
            bytes_in: meters.bytes_in(),
            bytes_out: meters.bytes_out(),
            fingerprint: self.fingerprint(),
        }
    }
}

/// FNV-1a fingerprint of a store's authoritative state: all committed
/// SimpleDB items in the provenance and closure domains plus all
/// non-`tmp/` S3 objects, via the services' unbilled latest-state
/// views. Shared by [`ServeHandle::fingerprint`] and the wall-clock
/// harness's in-process driver.
pub fn store_fingerprint(s3: &S3, db: &SimpleDb) -> u64 {
    let mut acc = String::new();
    for domain in [DOMAIN, CLOSURE_DOMAIN] {
        let mut names = db.latest_item_names(domain);
        names.sort_unstable();
        for name in &names {
            let Some(mut attrs) = db.latest_item(domain, name) else {
                continue;
            };
            attrs.sort_unstable_by(|a, b| {
                (a.name.as_str(), a.value.as_str()).cmp(&(b.name.as_str(), b.value.as_str()))
            });
            for attr in &attrs {
                acc.push_str(domain);
                acc.push('\u{1f}');
                acc.push_str(name);
                acc.push('\u{1f}');
                acc.push_str(&attr.name);
                acc.push('\u{1f}');
                acc.push_str(&attr.value);
                acc.push('\u{1e}');
            }
        }
    }
    let mut keys = s3.latest_keys(BUCKET, "");
    keys.sort_unstable();
    for key in &keys {
        if key.starts_with(TMP_PREFIX) {
            continue;
        }
        let Some(object) = s3.latest_object(BUCKET, key) else {
            continue;
        };
        acc.push_str(key);
        acc.push('\u{1f}');
        acc.push_str(&object.etag.to_hex());
        for (meta_key, meta_value) in object.metadata.iter() {
            acc.push('\u{1f}');
            acc.push_str(meta_key);
            acc.push('=');
            acc.push_str(meta_value);
        }
        acc.push('\u{1e}');
    }
    fnv1a_64(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch2::S3SimpleDb;
    use crate::arch3::S3SimpleDbSqs;
    use simworld::Blob;

    fn flush(name: &str, seed: u64, parent: Option<&str>) -> FileFlush {
        let mut b = FileFlush::builder(name).data(Blob::synthetic(seed, 2048));
        if let Some(p) = parent {
            b = b.record("input", &format!("{p}:1"));
        }
        b.build()
    }

    #[test]
    fn serves_reads_and_queries_through_shared_ref() {
        let world = SimWorld::counting();
        let serve = ServeHandle::new(S3SimpleDb::new(&world));
        serve.record(&flush("a.dat", 1, None)).unwrap();
        serve.record(&flush("b.dat", 2, Some("a.dat"))).unwrap();
        serve.flush().unwrap();

        let read = serve.read("b.dat").unwrap();
        assert!(read.consistent());
        let answer = serve
            .query(&ProvQuery::ProvenanceOf {
                name: "b.dat".into(),
                version: 1,
            })
            .unwrap();
        assert_eq!(answer.len(), 1);
        assert_eq!(serve.architecture(), "s3+simpledb");
        assert!(serve.requests() >= 5);
    }

    #[test]
    fn arch3_flush_drains_wal_before_reads() {
        let world = SimWorld::counting();
        let serve = ServeHandle::new(S3SimpleDbSqs::new(&world, "serve-1"));
        serve.record(&flush("x.dat", 3, None)).unwrap();
        // Logged but not committed: the read path must not see it yet.
        assert!(serve.read("x.dat").is_err());
        serve.flush().unwrap();
        assert!(serve.read("x.dat").unwrap().consistent());
    }

    #[test]
    fn fingerprint_matches_across_architect_independent_runs() {
        let fp = |seed: u64| {
            let world = SimWorld::new(seed);
            let serve = ServeHandle::new(S3SimpleDb::new(&world));
            serve.record(&flush("a.dat", 1, None)).unwrap();
            serve.record(&flush("b.dat", 2, Some("a.dat"))).unwrap();
            serve.flush().unwrap();
            serve.fingerprint()
        };
        // Different worlds (different RNG streams), same logical state.
        assert_eq!(fp(1), fp(99));
    }

    #[test]
    fn fingerprint_ignores_arch3_temporaries_but_not_data() {
        let world = SimWorld::counting();
        let serve = ServeHandle::new(S3SimpleDbSqs::new(&world, "c1"));
        serve.record(&flush("a.dat", 1, None)).unwrap();
        serve.flush().unwrap();
        let before = serve.fingerprint();
        serve.record(&flush("b.dat", 2, Some("a.dat"))).unwrap();
        serve.flush().unwrap();
        assert_ne!(before, serve.fingerprint());
    }

    #[test]
    fn clones_share_the_store_across_threads() {
        let world = SimWorld::counting();
        let serve = ServeHandle::new(S3SimpleDb::new(&world));
        for i in 0..8 {
            serve.record(&flush(&format!("f{i}.dat"), i, None)).unwrap();
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let serve = serve.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        let read = serve.read(&format!("f{i}.dat")).unwrap();
                        assert!(read.consistent(), "thread {t} file {i}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_snapshot_counts_requests_and_ops() {
        let world = SimWorld::counting();
        let serve = ServeHandle::new(S3SimpleDb::new(&world));
        serve.record(&flush("a.dat", 1, None)).unwrap();
        let stats = serve.stats();
        assert_eq!(stats.architecture, "s3+simpledb");
        assert!(stats.requests >= 2);
        assert!(stats.store_ops > 0);
        assert_eq!(stats.fingerprint, serve.fingerprint());
    }
}

//! Naming conventions shared by all three architectures: bucket/domain
//! names, S3 key prefixes, metadata keys, and overflow pointers.

use pass::ObjectRef;

/// The single S3 bucket all architectures store into.
pub const BUCKET: &str = "pass";

/// Prefix for user-visible data objects: `data/{object name}`.
pub const DATA_PREFIX: &str = "data/";

/// Prefix for provenance overflow objects: `prov/{item name}/{index}`.
pub const PROV_PREFIX: &str = "prov/";

/// Prefix for Architecture 3's temporary staging objects:
/// `tmp/{client}/{txid}/{kind}`.
pub const TMP_PREFIX: &str = "tmp/";

/// SimpleDB domain holding provenance items.
pub const DOMAIN: &str = "provenance";

/// Metadata key carrying the stored version on a data object.
pub const META_VERSION: &str = "version";

/// Metadata key carrying the consistency nonce on a data object.
pub const META_NONCE: &str = "nonce";

/// SimpleDB attribute holding `MD5(data ‖ nonce)` (§4.2).
pub const ATTR_MD5: &str = "md5";

/// SimpleDB attribute holding the nonce used for the MD5 attribute.
pub const ATTR_NONCE: &str = "nonce";

/// Provenance record values longer than this spill into their own S3
/// object. The paper uses 1 KB: SimpleDB's hard value limit, and the
/// headroom rule Architecture 1 applies to stay under S3's 2 KB metadata
/// cap ("we store any record larger than 1KB in a separate S3 object",
/// §5).
pub const OVERFLOW_THRESHOLD: usize = 1024;

/// S3 key of a data object.
pub fn data_key(name: &str) -> String {
    format!("{DATA_PREFIX}{name}")
}

/// Object name from a data key, if it is one.
pub fn parse_data_key(key: &str) -> Option<&str> {
    key.strip_prefix(DATA_PREFIX)
}

/// S3 key of the `idx`-th overflow object for an object version.
pub fn overflow_key(object: &ObjectRef, idx: usize) -> String {
    format!("{PROV_PREFIX}{}/{idx}", object.item_name())
}

/// S3 key prefix for Architecture 3 temp objects of one transaction.
pub fn tmp_prefix(client: &str, txid: u64) -> String {
    format!("{TMP_PREFIX}{client}/{txid}/")
}

/// Renders an overflow pointer value: `@s3:{key}`.
pub fn pointer(key: &str) -> String {
    format!("@s3:{key}")
}

/// Parses an overflow pointer value.
pub fn parse_pointer(value: &str) -> Option<&str> {
    value.strip_prefix("@s3:")
}

/// Renders a staged (temporary) pointer value: `@tmp:{key}`.
pub fn tmp_pointer(key: &str) -> String {
    format!("@tmp:{key}")
}

/// Parses a staged pointer value.
pub fn parse_tmp_pointer(value: &str) -> Option<&str> {
    value.strip_prefix("@tmp:")
}

/// The nonce for a version: the paper uses the file version (§4.2,
/// "the nonce is typically the file version").
pub fn nonce_for(object: &ObjectRef) -> String {
    object.version.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips() {
        assert_eq!(parse_data_key(&data_key("a/b.txt")), Some("a/b.txt"));
        assert_eq!(parse_data_key("prov/x/0"), None);
    }

    #[test]
    fn pointers_round_trip() {
        let key = overflow_key(&ObjectRef::new("foo", 2), 3);
        assert_eq!(key, "prov/foo 2/3");
        assert_eq!(parse_pointer(&pointer(&key)), Some(key.as_str()));
        assert_eq!(parse_tmp_pointer(&tmp_pointer(&key)), Some(key.as_str()));
        assert_eq!(parse_pointer("plain value"), None);
        assert_eq!(parse_tmp_pointer(&pointer(&key)), None);
    }

    #[test]
    fn nonce_is_the_version() {
        assert_eq!(nonce_for(&ObjectRef::new("foo", 7)), "7");
    }

    #[test]
    fn tmp_prefix_scopes_by_client_and_txn() {
        assert_eq!(tmp_prefix("c1", 9), "tmp/c1/9/");
    }
}

//! Naming conventions shared by all three architectures: bucket/domain
//! names, S3 key prefixes, metadata keys, and overflow pointers.

use pass::ObjectRef;

/// The single S3 bucket all architectures store into.
pub const BUCKET: &str = "pass";

/// Prefix for user-visible data objects: `data/{object name}`.
pub const DATA_PREFIX: &str = "data/";

/// Prefix for provenance overflow objects: `prov/{item name}/{index}`.
pub const PROV_PREFIX: &str = "prov/";

/// Prefix for Architecture 3's temporary staging objects:
/// `tmp/{client}/{txid}/{kind}`.
pub const TMP_PREFIX: &str = "tmp/";

/// SimpleDB domain holding provenance items.
pub const DOMAIN: &str = "provenance";

/// SimpleDB domain holding the materialized ancestry-closure index
/// (PR 9). Lives beside [`DOMAIN`] on the same sharded endpoint, so the
/// shardmap layer routes and splits it like any other domain — and so
/// the data/provenance fingerprints are byte-identical whether the
/// index exists or not.
pub const CLOSURE_DOMAIN: &str = "closure";

/// Closure attribute: node marker. Present exactly when the node's
/// closure row has been written — its absence on a committed node is
/// the detectable-staleness signal that triggers a self-heal rebuild.
pub const CLOSURE_ATTR_NODE: &str = "n";

/// Closure attribute: one value per transitive ancestor (the rendered
/// `ObjectRef` of the ancestor).
pub const CLOSURE_ATTR_ANC: &str = "a";

/// Closure attribute: one value per transitive descendant.
pub const CLOSURE_ATTR_DESC: &str = "d";

/// Closure attribute: one value per *direct* file child — the Q2 seed
/// set ("outputs of"), materialized so the index-backed Q3 engine can
/// seed itself with point reads instead of scans.
pub const CLOSURE_ATTR_OUT: &str = "o";

/// Closure attribute: one value per process version carrying a given
/// name (on name rows only; see [`closure_name_row`]).
pub const CLOSURE_ATTR_PROC: &str = "p";

/// Closure attribute (base rows only): the fragment indices of this
/// logical row that hold at least one value.
pub const CLOSURE_ATTR_FRAGS: &str = "f";

/// How many hash fragments a logical closure row spreads across (the
/// base item plus `CLOSURE_FRAG_BUCKETS - 1` fragment items). Each
/// physical item respects SimpleDB's 256-pair cap, so one logical row
/// holds roughly `64 * 250` values before overflowing.
pub const CLOSURE_FRAG_BUCKETS: u64 = 64;

/// Separator between a closure base item name and a fragment index
/// (`\u{1f}` cannot appear in object names that survive the record
/// escaper, so fragment names never collide with node rows).
pub const CLOSURE_FRAG_SEP: char = '\u{1f}';

/// Item-name prefix reserved for process-name rows in the closure
/// domain.
pub const CLOSURE_NAME_PREFIX: &str = "\u{1f}name\u{1f}";

/// Item name of the `idx`-th fragment of a logical closure row
/// (`idx >= 1`; fragment 0 is the base item itself).
pub fn closure_frag_name(base: &str, idx: u64) -> String {
    format!("{base}{CLOSURE_FRAG_SEP}{idx}")
}

/// Item name of the closure row listing the process versions named
/// `program`.
pub fn closure_name_row(program: &str) -> String {
    format!("{CLOSURE_NAME_PREFIX}{program}")
}

/// Which fragment of a logical closure row an `(attribute, value)` pair
/// lives in: 0 is the base item, anything else the matching fragment
/// item. The bucket is a pure function of the pair (FNV-1a), so closure
/// rows are byte-identical no matter how commits were grouped, replayed
/// after crashes, or interleaved — there is no read-modify-write in the
/// maintenance path.
pub fn closure_bucket(attr: &str, value: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in attr
        .as_bytes()
        .iter()
        .chain([0x1f].iter())
        .chain(value.as_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash % CLOSURE_FRAG_BUCKETS
}

/// Metadata key carrying the stored version on a data object.
pub const META_VERSION: &str = "version";

/// Metadata key carrying the consistency nonce on a data object.
pub const META_NONCE: &str = "nonce";

/// SimpleDB attribute holding `MD5(data ‖ nonce)` (§4.2).
pub const ATTR_MD5: &str = "md5";

/// SimpleDB attribute holding the nonce used for the MD5 attribute.
pub const ATTR_NONCE: &str = "nonce";

/// Provenance record values longer than this spill into their own S3
/// object. The paper uses 1 KB: SimpleDB's hard value limit, and the
/// headroom rule Architecture 1 applies to stay under S3's 2 KB metadata
/// cap ("we store any record larger than 1KB in a separate S3 object",
/// §5).
pub const OVERFLOW_THRESHOLD: usize = 1024;

/// S3 key of a data object.
pub fn data_key(name: &str) -> String {
    format!("{DATA_PREFIX}{name}")
}

/// Object name from a data key, if it is one.
pub fn parse_data_key(key: &str) -> Option<&str> {
    key.strip_prefix(DATA_PREFIX)
}

/// S3 key of the `idx`-th overflow object for an object version.
pub fn overflow_key(object: &ObjectRef, idx: usize) -> String {
    format!("{PROV_PREFIX}{}/{idx}", object.item_name())
}

/// S3 key prefix for Architecture 3 temp objects of one transaction.
pub fn tmp_prefix(client: &str, txid: u64) -> String {
    format!("{TMP_PREFIX}{client}/{txid}/")
}

/// Renders an overflow pointer value: `@s3:{key}`.
pub fn pointer(key: &str) -> String {
    format!("@s3:{key}")
}

/// Parses an overflow pointer value.
pub fn parse_pointer(value: &str) -> Option<&str> {
    value.strip_prefix("@s3:")
}

/// Renders a staged (temporary) pointer value: `@tmp:{key}`.
pub fn tmp_pointer(key: &str) -> String {
    format!("@tmp:{key}")
}

/// Parses a staged pointer value.
pub fn parse_tmp_pointer(value: &str) -> Option<&str> {
    value.strip_prefix("@tmp:")
}

/// The nonce for a version: the paper uses the file version (§4.2,
/// "the nonce is typically the file version").
pub fn nonce_for(object: &ObjectRef) -> String {
    object.version.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips() {
        assert_eq!(parse_data_key(&data_key("a/b.txt")), Some("a/b.txt"));
        assert_eq!(parse_data_key("prov/x/0"), None);
    }

    #[test]
    fn pointers_round_trip() {
        let key = overflow_key(&ObjectRef::new("foo", 2), 3);
        assert_eq!(key, "prov/foo 2/3");
        assert_eq!(parse_pointer(&pointer(&key)), Some(key.as_str()));
        assert_eq!(parse_tmp_pointer(&tmp_pointer(&key)), Some(key.as_str()));
        assert_eq!(parse_pointer("plain value"), None);
        assert_eq!(parse_tmp_pointer(&pointer(&key)), None);
    }

    #[test]
    fn nonce_is_the_version() {
        assert_eq!(nonce_for(&ObjectRef::new("foo", 7)), "7");
    }

    #[test]
    fn tmp_prefix_scopes_by_client_and_txn() {
        assert_eq!(tmp_prefix("c1", 9), "tmp/c1/9/");
    }

    #[test]
    fn closure_buckets_are_stable_and_bounded() {
        let b = closure_bucket("d", "cooked/0.dat:1");
        assert_eq!(b, closure_bucket("d", "cooked/0.dat:1"));
        assert!(b < CLOSURE_FRAG_BUCKETS);
        // Different attributes route the same value independently.
        assert!(closure_bucket("a", "x:1") < CLOSURE_FRAG_BUCKETS);
    }

    #[test]
    fn closure_names_cannot_collide_with_node_rows() {
        // Node rows are "{name} {version}"; fragment and name rows carry
        // the \u{1f} separator, which parse_item_name-able names never do.
        assert_eq!(closure_frag_name("f 1", 3), "f 1\u{1f}3");
        assert_eq!(closure_name_row("blastall"), "\u{1f}name\u{1f}blastall");
    }
}

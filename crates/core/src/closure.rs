//! Incrementally materialized ancestry-closure index (PR 9).
//!
//! The paper's Q3 ("all descendants of files derived from blast") is the
//! one query class whose walk engine scales with the *whole graph*: each
//! generation costs one `QueryWithAttributes`, and every such query is a
//! scan of the domain. This module maintains, at commit time, a closure
//! index in its own SimpleDB domain ([`CLOSURE_DOMAIN`]) so that Q3 can
//! be answered with point reads only — O(answer), not O(graph).
//!
//! # Layout
//!
//! One *logical row* per committed object version, keyed by the node's
//! item name, holding multi-valued attributes:
//!
//! * `n` — marker: the row was written by the indexer;
//! * `a` — renders of the node's transitive *ancestors*;
//! * `d` — renders of the node's transitive *descendants*;
//! * `o` — renders of the node's *direct file children* (the Q2 seed
//!   set, materialized so the serve path never scans).
//!
//! A reserved row per process name (`\u{1f}name\u{1f}{program}`) lists
//! the process versions carrying that name (`p` values) — the phase-1
//! lookup of the walk engine, again as a point read.
//!
//! Ancestry follows the same edge relation the walk engine traverses:
//! stored `input` attribute values that round-trip through
//! [`ObjectRef::parse`]. Overflow pointers and spilled continuation
//! pairs are invisible to the walk's equality queries, and they are
//! invisible to the index too — the two engines agree by construction.
//!
//! # The 256-pair cap, without read-modify-write
//!
//! SimpleDB rejects items beyond 256 pairs, and a popular ancestor
//! accumulates one `d` value per descendant. Each logical row therefore
//! spreads its values across [`CLOSURE_FRAG_BUCKETS`] physical items:
//! the pair `(attr, value)` lives in fragment `closure_bucket(attr,
//! value)` (0 = the base item). The bucket is a pure function of the
//! pair, so the final row bytes are independent of commit grouping,
//! crash replays, and interleavings — maintenance is nothing but
//! idempotent multi-value adds, which is what makes the crash story
//! work. Fragments in use are listed as `f` values on the base item.
//!
//! # Crash consistency
//!
//! Both commit paths write the index *after* the provenance rows and
//! *before* the point of no return (arch2: before the data PUT a client
//! retries from its cache; arch3: before the WAL messages are deleted).
//! A crash between edge commit and index write, or mid-index-batch,
//! therefore replays the whole maintenance step, and since every write
//! is an idempotent set-add the replayed closure is byte-identical to a
//! never-crashed one. If a row is missing when the maintenance path
//! needs it (e.g. the corpus predates the index being switched on), the
//! absence of the `n` marker makes the staleness detectable and the row
//! is rebuilt — healed — from the main provenance domain on the spot.
//!
//! # Out-of-order commits
//!
//! The arch3 daemon applies whichever transaction assemblies complete
//! first, so a child can commit *before* its parent. The child still
//! adds its render under the missing parent's row (a blind add needs no
//! row to exist), but it cannot know the parent's ancestors yet. The
//! repair rule closes the gap: when a node is indexed, it reads the
//! descendants already recorded on its own row — premature children and
//! their subtrees — and re-propagates them through its ancestor set.
//! Because a group node's own resolved set can be completed by a
//! sibling's repair inside the same group (its parent committed late,
//! as part of this very group), the propagation runs to a fixpoint over
//! the group's working ancestor map before anything is written. Every
//! repair write is the same idempotent set-add as regular maintenance,
//! so any commit order converges to the same bytes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use pass::ObjectRef;
use sim_simpledb::{ReplaceableAttribute, SimpleDb};
use simworld::{CrashSite, SimWorld};

use crate::error::Result;
use crate::layout::{
    closure_bucket, closure_frag_name, closure_name_row, CLOSURE_ATTR_ANC, CLOSURE_ATTR_DESC,
    CLOSURE_ATTR_FRAGS, CLOSURE_ATTR_NODE, CLOSURE_ATTR_OUT, CLOSURE_ATTR_PROC, CLOSURE_DOMAIN,
    DOMAIN,
};
use crate::retry::{with_throttle_retry, RetryPolicy};
use crate::serialize::pack_attr_batches;

/// How a store treats the closure index.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ClosureMode {
    /// No index: nothing is written, queries use the walk engine. The
    /// default, so every pinned request count and fingerprint in the
    /// repo is untouched unless a caller opts in.
    #[default]
    Off,
    /// Maintain the index at commit time; queries still use the walk
    /// engine (the oracle configuration for equivalence tests).
    Maintain,
    /// Maintain the index and serve Q3 from it.
    Serve,
}

impl ClosureMode {
    /// Whether commits should write index rows.
    pub fn maintains(self) -> bool {
        self != ClosureMode::Off
    }

    /// Whether Q3 should be answered from the index.
    pub fn serves(self) -> bool {
        self == ClosureMode::Serve
    }
}

/// Parses a stored attribute value as an object reference, requiring an
/// exact round-trip — the same equality the walk engine's
/// `['input' = '...']` queries apply to stored values.
pub(crate) fn parse_render(value: &str) -> Option<ObjectRef> {
    let obj = ObjectRef::parse(value)?;
    (obj.render() == value).then_some(obj)
}

/// One group node's commit-visible facts, extracted from the stored
/// attribute pairs.
#[derive(Debug, Default, Clone)]
struct NodeInfo {
    /// Stored `input` values that round-trip as refs (the walk's edge
    /// relation), deduplicated.
    parents: BTreeSet<String>,
    /// The node carries `type = file`.
    is_file: bool,
    /// The node carries `type = process`.
    is_process: bool,
    /// Stored `name` values.
    names: BTreeSet<String>,
}

impl NodeInfo {
    fn from_attrs(attrs: &[ReplaceableAttribute]) -> NodeInfo {
        let mut info = NodeInfo::default();
        for a in attrs {
            match a.name.as_str() {
                "input" if parse_render(&a.value).is_some() => {
                    info.parents.insert(a.value.clone());
                }
                "type" => match a.value.as_str() {
                    "file" => info.is_file = true,
                    "process" => info.is_process = true,
                    _ => {}
                },
                "name" => {
                    info.names.insert(a.value.clone());
                }
                _ => {}
            }
        }
        info
    }

    fn merge(&mut self, other: NodeInfo) {
        self.parents.extend(other.parents);
        self.is_file |= other.is_file;
        self.is_process |= other.is_process;
        self.names.extend(other.names);
    }
}

/// The maintenance engine: computes ancestor sets for a commit group and
/// writes the index rows through the batch API.
#[derive(Debug)]
pub struct ClosureIndex {
    world: SimWorld,
    db: SimpleDb,
    /// `CreateDomain` already issued (it is idempotent but billable, so
    /// it runs once per indexer).
    domain_ready: bool,
    /// item name -> ancestor renders, for nodes indexed in this
    /// process's lifetime. Purely an op-count optimization: a miss
    /// falls back to reading the closure row (and, failing that, a
    /// heal), so losing the cache — a daemon crash — costs reads, not
    /// correctness.
    cache: HashMap<String, BTreeSet<String>>,
}

impl ClosureIndex {
    /// An indexer writing through `db` on `world`.
    pub fn new(world: &SimWorld, db: &SimpleDb) -> ClosureIndex {
        ClosureIndex {
            world: world.clone(),
            db: db.clone(),
            domain_ready: false,
            cache: HashMap::new(),
        }
    }

    /// Drops all in-memory state, as a process crash would.
    pub fn reset(&mut self) {
        self.cache.clear();
    }

    /// Indexes one commit group: the `(item name, stored attributes)`
    /// pairs exactly as they were written to the provenance domain.
    /// Fires `mid_site` after each index batch lands (the
    /// mid-index-batch crash window).
    ///
    /// # Errors
    ///
    /// Service errors, and [`simworld::Crashed`] when an armed site
    /// fires.
    pub fn index_items(
        &mut self,
        items: &[(String, Vec<ReplaceableAttribute>)],
        retry: RetryPolicy,
        mid_site: CrashSite,
    ) -> Result<()> {
        // Gather the group's nodes (merging duplicate item entries —
        // two transactions re-flushing one version).
        let mut group: BTreeMap<String, NodeInfo> = BTreeMap::new();
        for (item_name, attrs) in items {
            if ObjectRef::parse_item_name(item_name).is_none() {
                continue;
            }
            let info = NodeInfo::from_attrs(attrs);
            match group.entry(item_name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(info);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(info),
            }
        }
        if group.is_empty() {
            return Ok(());
        }
        if !self.domain_ready {
            self.db.create_domain(CLOSURE_DOMAIN)?;
            self.domain_ready = true;
        }

        // Resolve every group node's ancestor set. Heals pull stale
        // out-of-group parents into `group`, so iterate until fixpoint
        // over a snapshot of the keys each round.
        let mut resolved: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut done: BTreeSet<String> = BTreeSet::new();
        loop {
            let pending: Vec<String> = group
                .keys()
                .filter(|k| !done.contains(*k))
                .cloned()
                .collect();
            if pending.is_empty() {
                break;
            }
            for item in pending {
                let mut stack = BTreeSet::new();
                self.resolve(&item, retry, &mut group, &mut resolved, &mut stack)?;
                done.insert(item);
            }
        }

        // Premature descendants: commits can land out of order, so a
        // child may already have recorded itself under a group node's
        // row before the node itself was indexed. Read what is there
        // now (before this group's writes) so the repair fixpoint below
        // can re-propagate it through the ancestors resolved in this
        // step.
        let mut descs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for item in group.keys() {
            descs.insert(item.clone(), self.read_row_desc(item, retry)?);
        }

        // Repair fixpoint. Seed a working ancestor map with the group's
        // resolved sets, and a descendant map with each group row's
        // premature children plus the descendant edges this group adds
        // (every node is a descendant of everything it resolved to).
        // Then propagate: a node's full ancestor set flows to every
        // descendant recorded on its row, until nothing grows. One pass
        // is *not* enough: a group node's resolved set can itself be
        // completed by a sibling's repair (its parent committed late,
        // in this very group), and its own descendants need that
        // completed set, not the resolution-time one.
        let mut full: BTreeMap<String, BTreeSet<String>> = resolved;
        for (item, ancestors) in full.clone() {
            let Some(object) = ObjectRef::parse_item_name(&item) else {
                continue;
            };
            let render = object.render();
            for anc in &ancestors {
                if let Some(anc_obj) = parse_render(anc) {
                    descs
                        .entry(anc_obj.item_name())
                        .or_default()
                        .insert(render.clone());
                }
            }
        }
        loop {
            let mut changed = false;
            for (item, ds) in &descs {
                let Some(ancestors) = full.get(item) else {
                    continue;
                };
                if ancestors.is_empty() {
                    continue;
                }
                let ancestors = ancestors.clone();
                for d in ds {
                    let Some(d_obj) = parse_render(d) else {
                        continue;
                    };
                    let d_item = d_obj.item_name();
                    if d_item == *item {
                        continue;
                    }
                    let entry = full.entry(d_item).or_default();
                    let before = entry.len();
                    entry.extend(ancestors.iter().cloned());
                    changed |= entry.len() != before;
                }
            }
            if !changed {
                break;
            }
        }

        // Emit the adds from the converged sets. Everything is an
        // idempotent set-add; the physical placement is a pure function
        // of (attr, value), so the converged bytes are independent of
        // grouping and replays.
        let mut adds: BTreeMap<String, BTreeSet<(String, String)>> = BTreeMap::new();
        let mut frag_marks: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
        let add = |adds: &mut BTreeMap<String, BTreeSet<(String, String)>>,
                   frag_marks: &mut BTreeMap<String, BTreeSet<u64>>,
                   base: &str,
                   attr: &str,
                   value: String| {
            let bucket = closure_bucket(attr, &value);
            if bucket == 0 {
                adds.entry(base.to_string())
                    .or_default()
                    .insert((attr.to_string(), value));
            } else {
                adds.entry(closure_frag_name(base, bucket))
                    .or_default()
                    .insert((attr.to_string(), value));
                frag_marks
                    .entry(base.to_string())
                    .or_default()
                    .insert(bucket);
            }
        };
        for (item, ancestors) in &full {
            let Some(object) = ObjectRef::parse_item_name(item) else {
                continue;
            };
            let render = object.render();
            for anc in ancestors {
                add(
                    &mut adds,
                    &mut frag_marks,
                    item,
                    CLOSURE_ATTR_ANC,
                    anc.clone(),
                );
                if let Some(anc_obj) = parse_render(anc) {
                    add(
                        &mut adds,
                        &mut frag_marks,
                        &anc_obj.item_name(),
                        CLOSURE_ATTR_DESC,
                        render.clone(),
                    );
                }
            }
            // Keep later groups in this daemon's lifetime seeing the
            // repaired sets: replace group rows (their converged set is
            // complete), extend repaired bystanders (their row already
            // carries ancestors this group never computed).
            if group.contains_key(item) {
                self.cache.insert(item.clone(), ancestors.clone());
            } else if let Some(cached) = self.cache.get_mut(item) {
                cached.extend(ancestors.iter().cloned());
            }
        }
        for (item, info) in &group {
            let Some(object) = ObjectRef::parse_item_name(item) else {
                continue;
            };
            let render = object.render();
            adds.entry(item.clone())
                .or_default()
                .insert((CLOSURE_ATTR_NODE.to_string(), "1".to_string()));
            if info.is_file {
                for parent in &info.parents {
                    if let Some(parent_obj) = parse_render(parent) {
                        add(
                            &mut adds,
                            &mut frag_marks,
                            &parent_obj.item_name(),
                            CLOSURE_ATTR_OUT,
                            render.clone(),
                        );
                    }
                }
            }
            if info.is_process {
                for name in &info.names {
                    add(
                        &mut adds,
                        &mut frag_marks,
                        &closure_name_row(name),
                        CLOSURE_ATTR_PROC,
                        render.clone(),
                    );
                }
            }
        }
        for (base, buckets) in frag_marks {
            let entry = adds.entry(base).or_default();
            for bucket in buckets {
                entry.insert((CLOSURE_ATTR_FRAGS.to_string(), bucket.to_string()));
            }
        }

        let batch_items: Vec<(String, Vec<ReplaceableAttribute>)> = adds
            .into_iter()
            .map(|(item, pairs)| {
                (
                    item,
                    pairs
                        .into_iter()
                        .map(|(name, value)| ReplaceableAttribute::add(name, value))
                        .collect(),
                )
            })
            .collect();
        for batch in pack_attr_batches(batch_items) {
            with_throttle_retry(&self.world, &retry, || {
                Ok(self.db.batch_put_attributes(CLOSURE_DOMAIN, &batch)?)
            })?;
            self.world.crash_point(mid_site)?;
        }
        Ok(())
    }

    /// The ancestor renders of `item`: `{parent} ∪ ancestors(parent)`
    /// over its in-group parents, falling back to the cache, then the
    /// stored closure row, then a heal for out-of-group parents.
    fn resolve(
        &mut self,
        item: &str,
        retry: RetryPolicy,
        group: &mut BTreeMap<String, NodeInfo>,
        resolved: &mut BTreeMap<String, BTreeSet<String>>,
        stack: &mut BTreeSet<String>,
    ) -> Result<BTreeSet<String>> {
        if let Some(done) = resolved.get(item) {
            return Ok(done.clone());
        }
        if !stack.insert(item.to_string()) {
            // Cycle: impossible in a committed DAG, but never loop.
            return Ok(BTreeSet::new());
        }
        let parents = group
            .get(item)
            .map(|info| info.parents.clone())
            .unwrap_or_default();
        let mut ancestors = BTreeSet::new();
        for parent in parents {
            let Some(parent_obj) = parse_render(&parent) else {
                continue;
            };
            let parent_item = parent_obj.item_name();
            let parent_anc = self.ancestors_of(&parent_item, retry, group, resolved, stack)?;
            ancestors.insert(parent.clone());
            ancestors.extend(parent_anc);
        }
        stack.remove(item);
        resolved.insert(item.to_string(), ancestors.clone());
        Ok(ancestors)
    }

    /// Ancestors of a node that may live in the group, the cache, the
    /// closure domain, or — stale index — only in the main provenance
    /// domain, in which case the node is pulled into the group so its
    /// rows are (re)written: the self-heal rule.
    fn ancestors_of(
        &mut self,
        item: &str,
        retry: RetryPolicy,
        group: &mut BTreeMap<String, NodeInfo>,
        resolved: &mut BTreeMap<String, BTreeSet<String>>,
        stack: &mut BTreeSet<String>,
    ) -> Result<BTreeSet<String>> {
        if group.contains_key(item) {
            return self.resolve(item, retry, group, resolved, stack);
        }
        if let Some(cached) = self.cache.get(item) {
            return Ok(cached.clone());
        }
        if let Some(stored) = self.read_row_ancestors(item, retry)? {
            self.cache.insert(item.to_string(), stored.clone());
            return Ok(stored);
        }
        // Detectably stale: the node is referenced by a committed edge
        // but carries no marked closure row. Rebuild it from the main
        // domain (eventual consistency may also return nothing here; an
        // absent node then contributes no ancestors, which a later
        // commit through this path will heal again).
        let attrs = with_throttle_retry(&self.world, &retry, || {
            Ok(self.db.get_attributes(DOMAIN, item, None)?)
        })?;
        if attrs.is_empty() {
            return Ok(BTreeSet::new());
        }
        let replaceable: Vec<ReplaceableAttribute> = attrs
            .into_iter()
            .map(|a| ReplaceableAttribute::add(a.name, a.value))
            .collect();
        group.insert(item.to_string(), NodeInfo::from_attrs(&replaceable));
        self.resolve(item, retry, group, resolved, stack)
    }

    /// Reads the stored descendant renders of a (possibly unmarked)
    /// closure row: the children that committed before the node itself
    /// and recorded themselves prematurely. Absent rows read as empty.
    fn read_row_desc(&self, item: &str, retry: RetryPolicy) -> Result<BTreeSet<String>> {
        let base = with_throttle_retry(&self.world, &retry, || {
            Ok(self.db.get_attributes(CLOSURE_DOMAIN, item, None)?)
        })?;
        let mut desc: BTreeSet<String> = base
            .iter()
            .filter(|a| a.name == CLOSURE_ATTR_DESC)
            .map(|a| a.value.clone())
            .collect();
        let buckets: BTreeSet<u64> = base
            .iter()
            .filter(|a| a.name == CLOSURE_ATTR_FRAGS)
            .filter_map(|a| a.value.parse().ok())
            .collect();
        for bucket in buckets {
            let frag_item = closure_frag_name(item, bucket);
            let frag = with_throttle_retry(&self.world, &retry, || {
                Ok(self.db.get_attributes(CLOSURE_DOMAIN, &frag_item, None)?)
            })?;
            desc.extend(
                frag.iter()
                    .filter(|a| a.name == CLOSURE_ATTR_DESC)
                    .map(|a| a.value.clone()),
            );
        }
        Ok(desc)
    }

    /// Reads the stored ancestor set of a marked closure row; `None`
    /// when the row is missing or unmarked (stale).
    fn read_row_ancestors(
        &self,
        item: &str,
        retry: RetryPolicy,
    ) -> Result<Option<BTreeSet<String>>> {
        let base = with_throttle_retry(&self.world, &retry, || {
            Ok(self.db.get_attributes(CLOSURE_DOMAIN, item, None)?)
        })?;
        if !base.iter().any(|a| a.name == CLOSURE_ATTR_NODE) {
            return Ok(None);
        }
        let mut ancestors: BTreeSet<String> = base
            .iter()
            .filter(|a| a.name == CLOSURE_ATTR_ANC)
            .map(|a| a.value.clone())
            .collect();
        let buckets: BTreeSet<u64> = base
            .iter()
            .filter(|a| a.name == CLOSURE_ATTR_FRAGS)
            .filter_map(|a| a.value.parse().ok())
            .collect();
        for bucket in buckets {
            let frag_item = closure_frag_name(item, bucket);
            let frag = with_throttle_retry(&self.world, &retry, || {
                Ok(self.db.get_attributes(CLOSURE_DOMAIN, &frag_item, None)?)
            })?;
            ancestors.extend(
                frag.iter()
                    .filter(|a| a.name == CLOSURE_ATTR_ANC)
                    .map(|a| a.value.clone()),
            );
        }
        Ok(Some(ancestors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_requires_exact_round_trip() {
        assert_eq!(parse_render("a:1"), Some(ObjectRef::new("a", 1)));
        assert_eq!(
            parse_render("proc:1:tool:2"),
            Some(ObjectRef::new("proc:1:tool", 2))
        );
        // Leading zeros do not round-trip, so the walk engine would
        // never match them either.
        assert_eq!(parse_render("a:01"), None);
        assert_eq!(parse_render("@s3:prov/a 1/0"), None);
        assert_eq!(parse_render("plain"), None);
    }

    /// Two WAL orders of the same two disjoint pipeline chains — serial
    /// and interleaved — must commit to byte-identical stores. The
    /// workload emits each file flush *before* its producing process
    /// flush, so children routinely index before their parents and the
    /// repair fixpoint is exercised on every cycle.
    #[test]
    fn arch3_commit_order_converges_to_identical_bytes() {
        use crate::arch3::{Arch3Config, S3SimpleDbSqs};
        use crate::serve::{store_fingerprint, Serveable};
        use crate::store::ProvenanceStore;
        use pass::{FileFlush, Observer, TraceEvent};
        use simworld::{Blob, SimWorld};

        fn thread_flushes(thread: usize, steps: usize, seed: u64) -> Vec<FileFlush> {
            let mix = |k: u64| seed ^ (((thread as u64) << 32) | k);
            let mut observer = Observer::new();
            let mut out = Vec::new();
            let source = format!("t{thread}/in.dat");
            out.extend(
                observer
                    .observe(TraceEvent::source(&source, Blob::synthetic(mix(0), 2048)))
                    .unwrap(),
            );
            let mut prev = source;
            for k in 0..steps {
                let pid = (thread * 1_000_000 + k + 1) as u32;
                let next = format!("t{thread}/f{k}.dat");
                for event in [
                    TraceEvent::exec(pid, "gen", format!("gen {prev}"), "PATH=/bin", None),
                    TraceEvent::read(pid, &prev),
                    TraceEvent::write(pid, &next),
                    TraceEvent::close(pid, &next, Blob::synthetic(mix(k as u64 + 1), 1024)),
                    TraceEvent::exit(pid),
                ] {
                    out.extend(observer.observe(event).unwrap());
                }
                prev = next;
            }
            out
        }

        let run = |interleave: bool| {
            let world = SimWorld::counting();
            let mut store = S3SimpleDbSqs::new(&world, "probe");
            store.set_config(Arch3Config {
                closure: ClosureMode::Serve,
                ..Arch3Config::default()
            });
            let t0 = thread_flushes(0, 5, 2009);
            let t1 = thread_flushes(1, 5, 2009);
            let flushes: Vec<FileFlush> = if interleave {
                let mut v = Vec::new();
                let (mut a, mut b) = (t0.into_iter(), t1.into_iter());
                loop {
                    match (a.next(), b.next()) {
                        (None, None) => break,
                        (x, y) => {
                            v.extend(x);
                            v.extend(y);
                        }
                    }
                }
                v
            } else {
                t0.into_iter().chain(t1).collect()
            };
            for f in &flushes {
                store.persist(f).unwrap();
            }
            store.run_daemons_until_idle().unwrap();
            let parts = store.serve_parts();
            (store_fingerprint(&parts.s3, &parts.db), parts)
        };

        let (fa, pa) = run(false);
        let (fb, pb) = run(true);
        if fa != fb {
            for domain in [DOMAIN, CLOSURE_DOMAIN] {
                let mut names: BTreeSet<String> =
                    pa.db.latest_item_names(domain).into_iter().collect();
                names.extend(pb.db.latest_item_names(domain));
                for name in names {
                    let get = |db: &SimpleDb| -> BTreeSet<(String, String)> {
                        db.latest_item(domain, &name)
                            .unwrap_or_default()
                            .into_iter()
                            .map(|a| (a.name, a.value))
                            .collect()
                    };
                    let (sa, sb) = (get(&pa.db), get(&pb.db));
                    for p in sa.difference(&sb) {
                        println!("only serial   {domain} {name:?} {p:?}");
                    }
                    for p in sb.difference(&sa) {
                        println!("only interlvd {domain} {name:?} {p:?}");
                    }
                }
            }
        }
        assert_eq!(fa, fb, "commit order changed the closure bytes");
    }

    #[test]
    fn node_info_extracts_the_walk_edge_relation() {
        let attrs = vec![
            ReplaceableAttribute::add("input", "a:1"),
            ReplaceableAttribute::add("input", "not a ref"),
            ReplaceableAttribute::add("type", "file"),
            ReplaceableAttribute::add("name", "tool"),
            ReplaceableAttribute::add("md5", "ffff"),
        ];
        let info = NodeInfo::from_attrs(&attrs);
        assert_eq!(info.parents.len(), 1);
        assert!(info.is_file);
        assert!(!info.is_process);
        assert!(info.names.contains("tool"));
    }
}

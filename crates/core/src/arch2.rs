//! Architecture 2 — **S3 + SimpleDB** (§4.2).
//!
//! Data goes to S3; provenance goes to SimpleDB, one item per object
//! *version* (`ItemName = "{name} {version}"`), giving indexed,
//! fine-grained queries. Consistency between the two services is
//! checked with an extra record: `MD5(data ‖ nonce)` stored in SimpleDB,
//! with the nonce (the file version) stored in the S3 object's metadata.
//! A reader recomputes the hash and retries until the pair matches.
//!
//! What this architecture *cannot* give is atomicity: the client writes
//! SimpleDB first and S3 second, so a crash between the two leaves
//! "orphan provenance" — records describing data that never arrived.
//! The only cleanup is an inelegant full scan of the domain
//! (implemented as [`S3SimpleDb::recover`]), which is exactly the
//! deficiency Architecture 3 fixes.

use pass::{CacheDir, FileFlush, ObjectRef};
use sim_s3::{Metadata, S3Error, S3};
use sim_simpledb::{DeletableAttribute, ReplaceableAttribute, SimpleDb, MAX_ATTRS_PER_CALL};
use simworld::{CrashSite, SimWorld};

use crate::closure::{ClosureIndex, ClosureMode};
use crate::error::Result;
use crate::layout::{
    data_key, nonce_for, ATTR_MD5, ATTR_NONCE, BUCKET, DOMAIN, META_NONCE, META_VERSION,
};
use crate::query::{ProvQuery, QueryAnswer, SimpleDbQueryEngine};
use crate::readpath::{verified_read, ReadContext};
use crate::retry::{with_throttle_retry, RetryPolicy};
use crate::serialize::{encode_records, fit_item_pairs, pack_attr_batches, read_version};
use crate::serve::{ServeParts, Serveable};
use crate::store::{ProvenanceStore, ReadOutcome, RecoveryReport};

/// Crash site: before storing an overflow object.
pub const A2_BEFORE_OVERFLOW_PUT: CrashSite = CrashSite::new("arch2.before_overflow_put");

/// Crash site: before the first `PutAttributes` call.
pub const A2_BEFORE_PROV_PUT: CrashSite = CrashSite::new("arch2.before_prov_put");

/// Crash site: between `PutAttributes` batches of one item.
pub const A2_MID_PROV_PUT: CrashSite = CrashSite::new("arch2.mid_prov_put");

/// Crash site: after the provenance is in SimpleDB but before the data
/// reaches S3 — the atomicity violation of §4.2.
pub const A2_BEFORE_DATA_PUT: CrashSite = CrashSite::new("arch2.before_data_put");

/// Crash site: edges committed, closure-index rows not yet written
/// (only on the path when [`Arch2Config::closure`] maintains the
/// index).
pub const A2_BEFORE_INDEX_PUT: CrashSite = CrashSite::new("arch2.before_index_put");

/// Crash site: between closure-index `BatchPutAttributes` calls.
pub const A2_MID_INDEX_PUT: CrashSite = CrashSite::new("arch2.mid_index_put");

/// Tunables for [`S3SimpleDb`].
#[derive(Copy, Clone, Debug)]
pub struct Arch2Config {
    /// Read retry policy.
    pub retry: RetryPolicy,
    /// Verify `MD5(data ‖ nonce)` on reads. Disabling this is the
    /// consistency ablation: reads then trust whatever the replicas
    /// return.
    pub verify_md5: bool,
    /// Include the nonce in the hash. Disabling reproduces the paper's
    /// remark that a bare data MD5 misses same-content overwrites.
    pub use_nonce: bool,
    /// Ancestry-closure index behaviour (off by default, so the
    /// request counts and fingerprints of the plain §4.2 protocol are
    /// untouched).
    pub closure: ClosureMode,
}

impl Default for Arch2Config {
    fn default() -> Self {
        Arch2Config {
            retry: RetryPolicy::default(),
            verify_md5: true,
            use_nonce: true,
            closure: ClosureMode::Off,
        }
    }
}

/// The S3 + SimpleDB provenance store.
///
/// # Examples
///
/// ```
/// use pass::FileFlush;
/// use provenance_cloud::{ProvenanceStore, S3SimpleDb};
/// use simworld::{Blob, SimWorld};
///
/// let world = SimWorld::counting();
/// let mut store = S3SimpleDb::new(&world);
/// let flush = FileFlush::builder("a.txt").data(Blob::from("hi")).build();
/// store.persist(&flush)?;
/// assert!(store.read("a.txt")?.consistent());
/// # Ok::<(), provenance_cloud::CloudError>(())
/// ```
#[derive(Debug)]
pub struct S3SimpleDb {
    world: SimWorld,
    s3: S3,
    db: SimpleDb,
    cache: CacheDir,
    config: Arch2Config,
    closure: ClosureIndex,
}

impl S3SimpleDb {
    /// Creates the store with fresh S3/SimpleDB endpoints (default
    /// SimpleDB shard count).
    pub fn new(world: &SimWorld) -> S3SimpleDb {
        S3SimpleDb::with_shards(world, sim_simpledb::DEFAULT_SHARDS)
    }

    /// Creates the store with fresh endpoints whose SimpleDB domains
    /// *and* S3 buckets are split into `shards` hash shards — the knob
    /// behind the parallel query/select and multi-client scaling
    /// experiments.
    pub fn with_shards(world: &SimWorld, shards: usize) -> S3SimpleDb {
        S3SimpleDb::with_shard_plan(world, simworld::ShardPlan::fixed(shards))
    }

    /// Creates the store with fresh endpoints provisioned per `plan` —
    /// initial shard count plus an optional hot-shard split policy,
    /// applied to both the S3 bucket and the SimpleDB domain.
    pub fn with_shard_plan(world: &SimWorld, plan: simworld::ShardPlan) -> S3SimpleDb {
        let s3 = S3::with_shard_plan(world, plan);
        s3.create_bucket(BUCKET)
            .expect("fresh endpoint has no buckets");
        let db = SimpleDb::with_shard_plan(world, plan);
        db.create_domain(DOMAIN)
            .expect("fresh endpoint has no domains");
        S3SimpleDb::with_services(world, &s3, &db)
    }

    /// Creates the store over existing endpoints (bucket and domain must
    /// exist).
    pub fn with_services(world: &SimWorld, s3: &S3, db: &SimpleDb) -> S3SimpleDb {
        S3SimpleDb {
            world: world.clone(),
            s3: s3.clone(),
            db: db.clone(),
            cache: CacheDir::new(),
            config: Arch2Config::default(),
            closure: ClosureIndex::new(world, db),
        }
    }

    /// Replaces the configuration.
    pub fn set_config(&mut self, config: Arch2Config) {
        self.config = config;
    }

    /// The underlying S3 handle (shared).
    pub fn s3(&self) -> &S3 {
        &self.s3
    }

    /// The underlying SimpleDB handle (shared).
    pub fn simpledb(&self) -> &SimpleDb {
        &self.db
    }

    /// The local cache directory.
    pub fn cache(&self) -> &CacheDir {
        &self.cache
    }

    /// The consistency token stored in SimpleDB: `MD5(data ‖ nonce)`,
    /// or `MD5(data)` under the no-nonce ablation.
    fn consistency_md5(&self, flush_data: &simworld::Blob, nonce: &str) -> String {
        if self.config.use_nonce {
            flush_data.md5_with_suffix(nonce.as_bytes()).to_hex()
        } else {
            flush_data.md5().to_hex()
        }
    }

    /// Protocol steps 1–2 for one flush: cache it, store its overflow
    /// and continuation objects, and return the finished provenance
    /// item (name plus its ≤ 256 attributes, MD5/nonce included) ready
    /// for SimpleDB.
    fn stage_item(&mut self, flush: &FileFlush) -> Result<(String, Vec<ReplaceableAttribute>)> {
        self.cache.store(flush);
        let encoded = encode_records(&flush.object, &flush.records);
        for (key, blob) in &encoded.overflows {
            self.world.crash_point(A2_BEFORE_OVERFLOW_PUT)?;
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self
                    .s3
                    .put_object(BUCKET, key, blob.clone(), Metadata::new())?)
            })?;
        }
        let nonce = nonce_for(&flush.object);
        // SimpleDB caps items at 256 pairs; excess (massive fan-in)
        // spills to a continuation object.
        let (pairs, continuation) = fit_item_pairs(&flush.object, encoded.pairs);
        if let Some((key, blob)) = continuation {
            self.world.crash_point(A2_BEFORE_OVERFLOW_PUT)?;
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self
                    .s3
                    .put_object(BUCKET, &key, blob.clone(), Metadata::new())?)
            })?;
        }
        let mut attrs: Vec<ReplaceableAttribute> = pairs
            .into_iter()
            .map(|(name, value)| ReplaceableAttribute::add(name, value))
            .collect();
        attrs.push(ReplaceableAttribute::add(
            ATTR_MD5,
            self.consistency_md5(&flush.data, &nonce),
        ));
        attrs.push(ReplaceableAttribute::add(ATTR_NONCE, nonce));
        Ok((flush.object.item_name(), attrs))
    }

    /// Protocol step 4 for one flush: the data PUT carrying the nonce.
    fn put_data(&mut self, flush: &FileFlush) -> Result<()> {
        self.world.crash_point(A2_BEFORE_DATA_PUT)?;
        let mut meta = Metadata::new();
        meta.insert(META_VERSION, flush.object.version.to_string());
        meta.insert(META_NONCE, nonce_for(&flush.object));
        with_throttle_retry(&self.world, &self.config.retry, || {
            Ok(self.s3.put_object(
                BUCKET,
                &data_key(&flush.object.name),
                flush.data.clone(),
                meta.clone(),
            )?)
        })?;
        Ok(())
    }
}

impl Serveable for S3SimpleDb {
    fn serve_parts(&self) -> ServeParts {
        ServeParts {
            world: self.world.clone(),
            s3: self.s3.clone(),
            db: self.db.clone(),
            retry: self.config.retry,
            verify_md5: self.config.verify_md5,
            use_nonce: self.config.use_nonce,
            serve_closure: self.config.closure.serves(),
        }
    }
}

impl ProvenanceStore for S3SimpleDb {
    fn architecture(&self) -> &'static str {
        "s3+simpledb"
    }

    /// §4.2 protocol: (1) read cache, (2) build the provenance item
    /// (overflow > 1 KB to S3, add the MD5 record), (3) PutAttributes
    /// (possibly several calls — 100-attribute limit), (4) PUT the data
    /// with the nonce in its metadata.
    fn persist(&mut self, flush: &FileFlush) -> Result<()> {
        // Steps 1–2: cache, overflow objects, finished attribute list.
        let (item_name, attrs) = self.stage_item(flush)?;

        // Step 3: store the provenance item in ≤ 100-attribute batches.
        self.world.crash_point(A2_BEFORE_PROV_PUT)?;
        for chunk in attrs.chunks(MAX_ATTRS_PER_CALL) {
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.db.put_attributes(DOMAIN, &item_name, chunk)?)
            })?;
            self.world.crash_point(A2_MID_PROV_PUT)?;
        }

        // Step 3b: closure-index maintenance rides the same flush. A
        // crash in this window is healed by the client's cache
        // re-flush, which replays the idempotent index adds.
        if self.config.closure.maintains() {
            self.world.crash_point(A2_BEFORE_INDEX_PUT)?;
            let group = vec![(item_name.clone(), attrs.clone())];
            self.closure
                .index_items(&group, self.config.retry, A2_MID_INDEX_PUT)?;
        }

        // Step 4: the data PUT, with the nonce as metadata. A crash just
        // before this line is the §4.2 atomicity violation.
        self.put_data(flush)
    }

    /// The batched §4.2 protocol: stage every flush's overflow objects
    /// and attribute list, ship the provenance items through
    /// `BatchPutAttributes` — up to 25 items / 256 summed pairs per
    /// **single billable request**, instead of one `PutAttributes` per
    /// ≤ 100-attribute chunk per item — then run the data PUTs. Final
    /// store state is identical to sequential [`S3SimpleDb::persist`]
    /// calls (provenance still lands before data, so the crash-ordering
    /// story is unchanged); only the request count drops.
    fn persist_batch(&mut self, flushes: &[FileFlush]) -> Result<()> {
        if flushes.is_empty() {
            return Ok(());
        }
        // Steps 1–2 for the whole group.
        let mut items: Vec<(String, Vec<ReplaceableAttribute>)> = Vec::with_capacity(flushes.len());
        for flush in flushes {
            items.push(self.stage_item(flush)?);
        }

        // Step 3, grouped: greedy first-fit into BatchPutAttributes
        // calls under both service limits (a repeated item name — the
        // same object version flushed twice in one group — closes the
        // group early, since the batch API rejects duplicates per call).
        self.world.crash_point(A2_BEFORE_PROV_PUT)?;
        let closure_src = self.config.closure.maintains().then(|| items.clone());
        for group in pack_attr_batches(items) {
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self.db.batch_put_attributes(DOMAIN, &group)?)
            })?;
            self.world.crash_point(A2_MID_PROV_PUT)?;
        }

        // Step 3b: index the whole group's edges at once.
        if let Some(src) = closure_src {
            self.world.crash_point(A2_BEFORE_INDEX_PUT)?;
            self.closure
                .index_items(&src, self.config.retry, A2_MID_INDEX_PUT)?;
        }

        // Step 4 for the whole group.
        for flush in flushes {
            self.put_data(flush)?;
        }
        Ok(())
    }

    /// The pipelined §4.2 persist path: groups issue back to back with
    /// up to `max_in_flight` requests per service in flight, so batch
    /// N+1's requests no longer wait for batch N's completions. Issue
    /// order — and therefore every service's final state — is identical
    /// to the synchronous batch path; only the completion accounting
    /// overlaps, which is where the virtual-time win lives.
    fn persist_pipelined(&mut self, groups: &[Vec<FileFlush>], max_in_flight: usize) -> Result<()> {
        self.world.begin_pipeline(max_in_flight);
        let result = groups.iter().try_for_each(|g| self.persist_batch(g));
        // Drain even when a crash fired: issued requests are on the
        // wire regardless of the client dying.
        self.world.drain_pipeline();
        result
    }

    /// §4.2 read: fetch data from S3 and provenance from SimpleDB, then
    /// compare `MD5(data ‖ nonce)` against the stored record; on
    /// mismatch, reissue both reads until they agree or the retry budget
    /// is spent.
    fn read(&mut self, name: &str) -> Result<ReadOutcome> {
        let ctx = ReadContext {
            world: &self.world,
            s3: &self.s3,
            db: &self.db,
            retry: self.config.retry,
            verify_md5: self.config.verify_md5,
            use_nonce: self.config.use_nonce,
        };
        verified_read(&ctx, name)
    }

    fn query(&mut self, query: &ProvQuery) -> Result<QueryAnswer> {
        let mut engine =
            SimpleDbQueryEngine::new(&self.db, &self.s3, &self.world, self.config.retry);
        if self.config.closure.serves() {
            engine = engine.serving_closure();
        }
        engine.execute(query)
    }

    /// The orphan-provenance scan the paper calls inelegant (§4.2): walk
    /// every SimpleDB item and delete those describing versions newer
    /// than the data S3 actually holds.
    fn recover(&mut self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let mut token: Option<String> = None;
        let mut orphans: Vec<String> = Vec::new();
        loop {
            let page = self.db.query(DOMAIN, None, Some(250), token.as_deref())?;
            for item_name in &page.item_names {
                report.items_scanned += 1;
                let Some(object) = ObjectRef::parse_item_name(item_name) else {
                    continue;
                };
                let current = match self.s3.head_object(BUCKET, &data_key(&object.name)) {
                    Ok(head) => Some(read_version(&head.metadata)?),
                    Err(S3Error::NoSuchKey { .. }) => None,
                    Err(e) => return Err(e.into()),
                };
                // Provenance for a version the data store has never
                // reached is an orphan. Older versions are history, not
                // orphans.
                if current.map(|v| object.version > v).unwrap_or(true) {
                    orphans.push(item_name.clone());
                }
            }
            match page.next_token {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        for item_name in orphans {
            with_throttle_retry(&self.world, &self.config.retry, || {
                Ok(self
                    .db
                    .delete_attributes(DOMAIN, &item_name, None::<&[DeletableAttribute]>)?)
            })?;
            report.orphan_provenance_removed += 1;
        }
        Ok(report)
    }
}

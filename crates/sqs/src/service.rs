//! The SQS service simulator.
//!
//! # Locking layout
//!
//! Queues are independent: each queue sits behind its own lock under an
//! `RwLock` queue map, and the global send sequence is a lock-free
//! atomic. Operations on different queues therefore never contend —
//! the concurrency property the multi-client scaling experiments need,
//! mirroring the per-shard locking of the sharded S3/SimpleDB
//! simulators (a queue is its own "shard": the real service partitions
//! by queue too).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simworld::{
    fnv1a_64, Op, Service, SimDuration, SimInstant, SimWorld, ThrottleConfig, TokenBucket,
};

use crate::error::{Result, SqsError};

/// SQS's 2009 limit on message body size, in bytes.
pub const MAX_MESSAGE_SIZE: usize = 8 * 1024;

/// Maximum messages returnable by one `ReceiveMessage`.
pub const MAX_RECEIVE_BATCH: usize = 10;

/// Maximum entries per `SendMessageBatch`/`DeleteMessageBatch` call.
pub const MAX_BATCH_ENTRIES: usize = 10;

/// Maximum summed body bytes per `SendMessageBatch` call. Tighter than
/// `MAX_BATCH_ENTRIES × MAX_MESSAGE_SIZE` (80 KB), so a batcher must
/// respect both limits — ten maximal 8 KB bodies do **not** fit one
/// batch.
pub const MAX_BATCH_PAYLOAD: usize = 64 * 1024;

/// Message retention: SQS deletes messages older than four days (§4.3 —
/// the paper's garbage-collection story leans on this).
pub const RETENTION: SimDuration = SimDuration::from_days(4);

/// Default visibility timeout (the 2009 service default of 30 seconds).
pub const DEFAULT_VISIBILITY_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// How many storage servers a queue's messages spread over; receives
/// sample a subset, which is why one call can miss messages.
pub const QUEUE_SERVERS: usize = 8;

/// Outcome of one entry of a batch call, in submission order: `Ok` is
/// the entry's payload (the message id for sends, `()` for deletes),
/// `Err` the per-entry failure — other entries of the same batch are
/// unaffected, exactly like the real API's `Successful`/`Failed` lists.
pub type BatchEntryOutcome<T> = std::result::Result<T, SqsError>;

/// A message handed back by `ReceiveMessage`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReceivedMessage {
    /// Stable message identifier (same across re-deliveries).
    pub message_id: String,
    /// Receipt handle for this delivery; required by `DeleteMessage`.
    pub receipt_handle: String,
    /// Message body.
    pub body: String,
}

#[derive(Clone, Debug)]
struct StoredMessage {
    seq: u64,
    message_id: String,
    body: String,
    sent_at: SimInstant,
    /// Hidden until this instant (visibility timeout after a delivery).
    visible_at: SimInstant,
    /// Which storage server holds the message.
    server: usize,
    /// Delivery count; embedded in receipt handles.
    deliveries: u64,
}

#[derive(Debug)]
struct Queue {
    name: String,
    messages: BTreeMap<u64, StoredMessage>,
    visibility_timeout: SimDuration,
}

/// Provider-side rate limiting: one lazily-created token bucket per
/// queue URL (the real service partitions by queue), governed by a
/// single optional config. `None` (the default) admits everything with
/// one cheap check.
#[derive(Default)]
struct ThrottleState {
    config: Option<ThrottleConfig>,
    buckets: HashMap<String, TokenBucket>,
}

struct Inner {
    /// Queues keyed by URL, each behind its own lock so operations on
    /// different queues run concurrently.
    queues: RwLock<BTreeMap<String, Arc<Mutex<Queue>>>>,
    /// Global send sequence; atomic so sends on different queues never
    /// serialise on it.
    next_seq: AtomicU64,
    throttle: Mutex<ThrottleState>,
}

/// The simulated Simple Queueing Service.
///
/// Semantics reproduced from the 2009 service, as described in §2.3 of
/// the paper:
///
/// * 8 KB Unicode message bodies;
/// * `ReceiveMessage` **samples a subset of servers** and returns at most
///   10 of the visible messages it finds there — callers must repeat
///   the call until they have everything;
/// * a delivered message is hidden for the **visibility timeout**; if the
///   consumer does not delete it in time it becomes visible again (so
///   exactly one client processes a message at a time, but a message may
///   be processed more than once);
/// * messages older than **four days** evaporate (enforced on sends and
///   receives alike, so a write-only queue's storage gauge still drains);
/// * best-effort FIFO ordering, no more.
///
/// # Examples
///
/// ```
/// use sim_sqs::Sqs;
/// use simworld::SimWorld;
///
/// let world = SimWorld::counting();
/// let sqs = Sqs::new(&world);
/// let url = sqs.create_queue("wal-client-1");
/// sqs.send_message(&url, "begin txn 7")?;
/// let got = sqs.receive_message(&url, 10)?;
/// if let Some(msg) = got.first() {
///     sqs.delete_message(&url, &msg.receipt_handle)?;
/// }
/// # Ok::<(), sim_sqs::SqsError>(())
/// ```
#[derive(Clone)]
pub struct Sqs {
    world: SimWorld,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Sqs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queues = self.inner.queues.read();
        f.debug_struct("Sqs")
            .field("queues", &queues.len())
            .finish_non_exhaustive()
    }
}

impl Sqs {
    /// Connects a new simulated SQS endpoint to `world`.
    pub fn new(world: &SimWorld) -> Sqs {
        Sqs {
            world: world.clone(),
            inner: Arc::new(Inner {
                queues: RwLock::new(BTreeMap::new()),
                next_seq: AtomicU64::new(0),
                throttle: Mutex::new(ThrottleState::default()),
            }),
        }
    }

    /// Installs (or, with `None`, removes) a per-queue request-rate
    /// limit on the write path (sends and deletes). Above the limit,
    /// those calls return [`SqsError::ServiceUnavailable`] without
    /// applying — the rejection is still a billable, metered request.
    /// Receives are not throttled. Replaces any prior limit and resets
    /// bucket state.
    pub fn set_throttle(&self, config: Option<ThrottleConfig>) {
        let mut t = self.inner.throttle.lock();
        t.config = config;
        t.buckets.clear();
    }

    /// The active per-queue request-rate limit, if any.
    pub fn throttle(&self) -> Option<ThrottleConfig> {
        self.inner.throttle.lock().config
    }

    /// Admission check for one request against `url`'s token bucket.
    /// Checked *before* any RNG draw or sequence-number reservation, so
    /// a rejected request leaves the simulation exactly as it found it.
    fn admit(&self, url: &str) -> bool {
        let mut t = self.inner.throttle.lock();
        let Some(cfg) = t.config else {
            return true;
        };
        let now = self.world.now();
        t.buckets
            .entry(url.to_string())
            .or_insert_with(|| TokenBucket::new(cfg, now))
            .try_admit(now)
    }

    /// Creates a queue (idempotent) and returns its URL.
    pub fn create_queue(&self, name: impl Into<String>) -> String {
        let name = name.into();
        let url = format!("https://sqs.sim/{name}");
        let mut queues = self.inner.queues.write();
        self.world
            .record_op(Op::SqsCreateQueue, name.len() as u64, url.len() as u64);
        queues.entry(url.clone()).or_insert_with(|| {
            Arc::new(Mutex::new(Queue {
                name,
                messages: BTreeMap::new(),
                visibility_timeout: DEFAULT_VISIBILITY_TIMEOUT,
            }))
        });
        url
    }

    /// Changes a queue's visibility timeout.
    ///
    /// # Errors
    ///
    /// [`SqsError::QueueDoesNotExist`].
    pub fn set_visibility_timeout(&self, url: &str, timeout: SimDuration) -> Result<()> {
        let queue = self.queue(url)?;
        queue.lock().visibility_timeout = timeout;
        Ok(())
    }

    /// Enqueues a message; returns its message id. Retention is enforced
    /// here too, so even a write-only queue sheds expired messages (and
    /// their stored bytes). Validation happens before any state — RNG,
    /// sequence counter, ledger — is touched, so a failed send leaves
    /// the simulation exactly as it found it.
    ///
    /// # Errors
    ///
    /// [`SqsError::MessageTooLong`] past 8 KB;
    /// [`SqsError::QueueDoesNotExist`].
    pub fn send_message(&self, url: &str, body: impl Into<String>) -> Result<String> {
        let body = body.into();
        if body.len() > MAX_MESSAGE_SIZE {
            return Err(SqsError::MessageTooLong {
                size: body.len(),
                limit: MAX_MESSAGE_SIZE,
            });
        }
        let queue = self.queue(url)?;
        if !self.admit(url) {
            self.world
                .record_throttled(Op::SqsSendMessage, body.len() as u64);
            return Err(SqsError::ServiceUnavailable {
                url: url.to_string(),
            });
        }
        let server = self.world.rand_below(QUEUE_SERVERS as u64) as usize;
        let now = self.world.now();
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let message_id = format!("msg-{seq:016x}");
        let size = body.len() as u64;
        let mut queue = queue.lock();
        let freed = expire_old_messages(&mut queue, now);
        queue.messages.insert(
            seq,
            StoredMessage {
                seq,
                message_id: message_id.clone(),
                body,
                sent_at: now,
                visible_at: now,
                server,
                deliveries: 0,
            },
        );
        drop(queue);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        // Keyed by queue: pipelined sends to one queue complete in
        // issue order, so a WAL's BEGIN..COMMIT sequence stays ordered
        // however many sends are in flight.
        self.world
            .record_op_keyed(Op::SqsSendMessage, size, 0, fnv1a_64(url));
        self.world.adjust_stored(Service::Sqs, size as i64);
        Ok(message_id)
    }

    /// Enqueues up to [`MAX_BATCH_ENTRIES`] messages in **one billable
    /// request** (`SendMessageBatch`): the queue lock is taken once,
    /// sequence numbers are allocated in one batched reservation, and
    /// the latency model charges one round trip plus the busiest storage
    /// server's share of the per-entry marginal cost — the batching win
    /// the paper's round-trip argument turns on.
    ///
    /// Entries fail *individually* (`Err` in the returned vector, which
    /// is index-aligned with `bodies`): an oversized body poisons
    /// neither its batch-mates nor the simulation — failed entries burn
    /// no sequence numbers and no RNG draws, so a run with rejected
    /// entries stays bit-identical to one that never submitted them.
    ///
    /// # Errors
    ///
    /// Batch-level failures mutate nothing: [`SqsError::EmptyBatch`],
    /// [`SqsError::TooManyBatchEntries`] past [`MAX_BATCH_ENTRIES`],
    /// [`SqsError::BatchPayloadTooLarge`] past [`MAX_BATCH_PAYLOAD`]
    /// summed bytes, [`SqsError::QueueDoesNotExist`].
    pub fn send_message_batch(
        &self,
        url: &str,
        bodies: &[String],
    ) -> Result<Vec<BatchEntryOutcome<String>>> {
        if bodies.is_empty() {
            return Err(SqsError::EmptyBatch);
        }
        if bodies.len() > MAX_BATCH_ENTRIES {
            return Err(SqsError::TooManyBatchEntries {
                submitted: bodies.len(),
            });
        }
        let total: usize = bodies.iter().map(String::len).sum();
        if total > MAX_BATCH_PAYLOAD {
            return Err(SqsError::BatchPayloadTooLarge {
                size: total,
                limit: MAX_BATCH_PAYLOAD,
            });
        }
        let queue = self.queue(url)?;
        if !self.admit(url) {
            self.world
                .record_throttled(Op::SqsSendMessageBatch, total as u64);
            return Err(SqsError::ServiceUnavailable {
                url: url.to_string(),
            });
        }

        // Per-entry validation first: only the accepted entries draw
        // RNG (server placement) and consume sequence numbers.
        let accepted: Vec<usize> = (0..bodies.len())
            .filter(|i| bodies[*i].len() <= MAX_MESSAGE_SIZE)
            .collect();
        let servers: Vec<usize> = accepted
            .iter()
            .map(|_| self.world.rand_below(QUEUE_SERVERS as u64) as usize)
            .collect();
        // One batched reservation: `fetch_add(k)` hands this batch the
        // contiguous range `base+1 ..= base+k`.
        let base = self
            .inner
            .next_seq
            .fetch_add(accepted.len() as u64, Ordering::Relaxed);
        let now = self.world.now();

        let mut out: Vec<BatchEntryOutcome<String>> = bodies
            .iter()
            .map(|b| {
                Err(SqsError::MessageTooLong {
                    size: b.len(),
                    limit: MAX_MESSAGE_SIZE,
                })
            })
            .collect();
        let mut per_server = [0u64; QUEUE_SERVERS];
        let mut bytes_in = 0u64;
        let mut queue = queue.lock();
        let freed = expire_old_messages(&mut queue, now);
        for (k, (&i, &server)) in accepted.iter().zip(&servers).enumerate() {
            let seq = base + 1 + k as u64;
            let message_id = format!("msg-{seq:016x}");
            per_server[server] += 1;
            bytes_in += bodies[i].len() as u64;
            queue.messages.insert(
                seq,
                StoredMessage {
                    seq,
                    message_id: message_id.clone(),
                    body: bodies[i].clone(),
                    sent_at: now,
                    visible_at: now,
                    server,
                    deliveries: 0,
                },
            );
            out[i] = Ok(message_id);
        }
        drop(queue);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        // Storage servers append their entries in parallel; the busiest
        // one gates the response (the receive-path rule, applied to the
        // write path).
        let gating = per_server.iter().copied().max().unwrap_or(0);
        // Queue-keyed like the point send: a pipelined client's batches
        // to one queue complete in issue order.
        self.world.record_batch_keyed(
            Op::SqsSendMessageBatch,
            accepted.len() as u64,
            bytes_in,
            0,
            gating,
            fnv1a_64(url),
        );
        if bytes_in > 0 {
            self.world.adjust_stored(Service::Sqs, bytes_in as i64);
        }
        Ok(out)
    }

    /// Receives up to `max` visible messages from a sampled subset of the
    /// queue's servers. Returned messages become invisible for the
    /// queue's visibility timeout.
    ///
    /// An empty result does **not** mean the queue is empty — repeat the
    /// call (the commit daemon of the paper's Architecture 3 does exactly
    /// that).
    ///
    /// # Errors
    ///
    /// [`SqsError::ReceiveCountOutOfRange`] outside `1..=10` (the real
    /// API's `ReadCountOutOfRange`); [`SqsError::QueueDoesNotExist`].
    pub fn receive_message(&self, url: &str, max: usize) -> Result<Vec<ReceivedMessage>> {
        if max == 0 || max > MAX_RECEIVE_BATCH {
            return Err(SqsError::ReceiveCountOutOfRange { requested: max });
        }
        let queue = self.queue(url)?;
        // Sample a subset of servers: each server is polled with p = 1/2,
        // with at least one server always polled.
        let sample_mask = {
            let mut mask = [false; QUEUE_SERVERS];
            for m in mask.iter_mut() {
                *m = self.world.rand_below(2) == 1;
            }
            if mask.iter().all(|m| !m) {
                mask[self.world.rand_below(QUEUE_SERVERS as u64) as usize] = true;
            }
            mask
        };
        let now = self.world.now();
        let mut queue = queue.lock();
        let freed = expire_old_messages(&mut queue, now);
        let timeout = queue.visibility_timeout;
        // Each sampled server scans its own messages (in parallel with
        // the others); the busiest sampled server gates the response.
        let mut per_server = [0u64; QUEUE_SERVERS];
        let mut picked: Vec<u64> = Vec::new();
        for m in queue.messages.values() {
            if sample_mask[m.server] {
                per_server[m.server] += 1;
                if m.visible_at <= now {
                    picked.push(m.seq);
                }
            }
        }
        let scan_share = per_server.iter().copied().max().unwrap_or(0);
        picked.sort_unstable(); // best-effort FIFO within the sample
        picked.truncate(max);
        let name = queue.name.clone();
        let mut out = Vec::with_capacity(picked.len());
        let mut bytes_out = 0u64;
        for seq in picked {
            let msg = queue.messages.get_mut(&seq).expect("picked from this map");
            msg.deliveries += 1;
            msg.visible_at = now + timeout;
            bytes_out += msg.body.len() as u64;
            out.push(ReceivedMessage {
                message_id: msg.message_id.clone(),
                receipt_handle: format!("rh/{name}/{seq}/{}", msg.deliveries),
                body: msg.body.clone(),
            });
        }
        drop(queue);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        self.world
            .record_scan(Op::SqsReceiveMessage, 0, bytes_out, scan_share);
        Ok(out)
    }

    /// Deletes a message by receipt handle. Deleting an already-deleted
    /// message succeeds, so replays are harmless.
    ///
    /// # Errors
    ///
    /// [`SqsError::InvalidReceiptHandle`] for malformed handles;
    /// [`SqsError::QueueDoesNotExist`].
    pub fn delete_message(&self, url: &str, receipt_handle: &str) -> Result<()> {
        let seq = parse_receipt_seq(receipt_handle)?;
        let queue = self.queue(url)?;
        if !self.admit(url) {
            self.world
                .record_throttled(Op::SqsDeleteMessage, receipt_handle.len() as u64);
            return Err(SqsError::ServiceUnavailable {
                url: url.to_string(),
            });
        }
        let mut queue = queue.lock();
        let removed = queue.messages.remove(&seq);
        drop(queue);
        self.world
            .record_op(Op::SqsDeleteMessage, receipt_handle.len() as u64, 0);
        if let Some(msg) = removed {
            self.world
                .adjust_stored(Service::Sqs, -(msg.body.len() as i64));
        }
        Ok(())
    }

    /// Deletes up to [`MAX_BATCH_ENTRIES`] messages by receipt handle in
    /// **one billable request** (`DeleteMessageBatch`), taking the queue
    /// lock once. Entries fail individually (malformed handles); valid
    /// handles succeed even when the message is already gone, so replays
    /// are as harmless as for [`Sqs::delete_message`]. The returned
    /// vector is index-aligned with `receipt_handles`.
    ///
    /// # Errors
    ///
    /// Batch-level failures mutate nothing: [`SqsError::EmptyBatch`],
    /// [`SqsError::TooManyBatchEntries`], [`SqsError::QueueDoesNotExist`].
    pub fn delete_message_batch(
        &self,
        url: &str,
        receipt_handles: &[String],
    ) -> Result<Vec<BatchEntryOutcome<()>>> {
        if receipt_handles.is_empty() {
            return Err(SqsError::EmptyBatch);
        }
        if receipt_handles.len() > MAX_BATCH_ENTRIES {
            return Err(SqsError::TooManyBatchEntries {
                submitted: receipt_handles.len(),
            });
        }
        let queue = self.queue(url)?;
        let bytes_in: u64 = receipt_handles.iter().map(|h| h.len() as u64).sum();
        if !self.admit(url) {
            self.world
                .record_throttled(Op::SqsDeleteMessageBatch, bytes_in);
            return Err(SqsError::ServiceUnavailable {
                url: url.to_string(),
            });
        }
        let parsed: Vec<BatchEntryOutcome<u64>> = receipt_handles
            .iter()
            .map(|h| parse_receipt_seq(h))
            .collect();
        let mut freed = 0u64;
        let mut per_server = [0u64; QUEUE_SERVERS];
        let mut entries = 0u64;
        let mut queue = queue.lock();
        let out: Vec<BatchEntryOutcome<()>> = parsed
            .into_iter()
            .map(|entry| {
                let seq = entry?;
                entries += 1;
                if let Some(msg) = queue.messages.remove(&seq) {
                    freed += msg.body.len() as u64;
                    per_server[msg.server] += 1;
                }
                Ok(())
            })
            .collect();
        drop(queue);
        // Servers drop their entries in parallel; the busiest gates.
        let gating = per_server.iter().copied().max().unwrap_or(0);
        self.world
            .record_batch(Op::SqsDeleteMessageBatch, entries, bytes_in, 0, gating);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        Ok(out)
    }

    /// `GetQueueAttributes: ApproximateNumberOfMessages`. The count is an
    /// approximation (it reflects a server sample), exactly as the paper
    /// notes in §2.3.
    ///
    /// # Errors
    ///
    /// [`SqsError::QueueDoesNotExist`].
    pub fn approximate_number_of_messages(&self, url: &str) -> Result<usize> {
        let queue = self.queue(url)?;
        // Sample half of the servers and extrapolate.
        let sampled: Vec<usize> = (0..QUEUE_SERVERS)
            .filter(|_| self.world.rand_below(2) == 1)
            .collect();
        let now = self.world.now();
        let mut queue = queue.lock();
        let freed = expire_old_messages(&mut queue, now);
        let mut per_server = [0u64; QUEUE_SERVERS];
        for m in queue.messages.values() {
            if sampled.contains(&m.server) {
                per_server[m.server] += 1;
            }
        }
        drop(queue);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        let scan_share = per_server.iter().copied().max().unwrap_or(0);
        self.world
            .record_scan(Op::SqsGetQueueAttributes, 0, 16, scan_share);
        if sampled.is_empty() {
            return Ok(0);
        }
        let on_sample: usize = per_server.iter().sum::<u64>() as usize;
        Ok(on_sample * QUEUE_SERVERS / sampled.len())
    }

    // --- authoritative (non-billed) views for invariant checks ---

    /// Exact live message count, ignoring sampling and without billing.
    /// For tests and property validators only.
    pub fn exact_message_count(&self, url: &str) -> usize {
        let now = self.world.now();
        match self.queue(url) {
            Ok(queue) => {
                let mut queue = queue.lock();
                let freed = expire_old_messages(&mut queue, now);
                let len = queue.messages.len();
                drop(queue);
                if freed > 0 {
                    self.world.adjust_stored(Service::Sqs, -(freed as i64));
                }
                len
            }
            Err(_) => 0,
        }
    }

    /// All live message bodies, unbilled and ignoring visibility. For
    /// tests and property validators only.
    pub fn peek_all(&self, url: &str) -> Vec<String> {
        let now = self.world.now();
        match self.queue(url) {
            Ok(queue) => {
                let mut queue = queue.lock();
                let freed = expire_old_messages(&mut queue, now);
                let bodies = queue.messages.values().map(|m| m.body.clone()).collect();
                drop(queue);
                if freed > 0 {
                    self.world.adjust_stored(Service::Sqs, -(freed as i64));
                }
                bodies
            }
            Err(_) => Vec::new(),
        }
    }

    /// Looks a queue up, cloning its handle out so the queue-map lock is
    /// held only for the lookup.
    fn queue(&self, url: &str) -> Result<Arc<Mutex<Queue>>> {
        self.inner
            .queues
            .read()
            .get(url)
            .cloned()
            .ok_or_else(|| SqsError::QueueDoesNotExist {
                url: url.to_string(),
            })
    }
}

/// Drops messages past the retention window; returns the freed bytes so
/// the caller can settle the stored-bytes gauge.
///
/// O(1) in the common case: messages arrive in sequence order and the
/// clock is monotone, so the lowest-seq message is the oldest — if it is
/// still inside the retention window, nothing needs reaping. (Concurrent
/// sends can invert `sent_at` across adjacent sequence numbers by the
/// width of their interleaving; such a message is reaped one early-out
/// later, which the four-day window renders unobservable.) This keeps
/// expiry-on-send from turning every send into a full queue scan.
fn expire_old_messages(queue: &mut Queue, now: SimInstant) -> u64 {
    match queue.messages.values().next() {
        Some(oldest) if now.saturating_since(oldest.sent_at) > RETENTION => {}
        _ => return 0,
    }
    let mut freed = 0;
    queue.messages.retain(|_, m| {
        let keep = now.saturating_since(m.sent_at) <= RETENTION;
        if !keep {
            freed += m.body.len() as u64;
        }
        keep
    });
    freed
}

/// Parses the sequence number out of a `rh/{name}/{seq}/{deliveries}`
/// receipt handle. Parsed from the *ends* — prefix first, then the two
/// trailing numeric fields — so queue names containing `/` produce
/// handles that still round-trip.
fn parse_receipt_seq(handle: &str) -> Result<u64> {
    let invalid = || SqsError::InvalidReceiptHandle {
        handle: handle.to_string(),
    };
    let rest = handle.strip_prefix("rh/").ok_or_else(invalid)?;
    let (rest, deliveries) = rest.rsplit_once('/').ok_or_else(invalid)?;
    let (name, seq) = rest.rsplit_once('/').ok_or_else(invalid)?;
    if name.is_empty() || deliveries.parse::<u64>().is_err() {
        return Err(invalid());
    }
    seq.parse::<u64>().map_err(|_| invalid())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipt_seq_parses_from_the_ends() {
        assert_eq!(parse_receipt_seq("rh/q/17/2"), Ok(17));
        // Queue names may contain slashes; the numeric fields still
        // parse because they anchor at the end.
        assert_eq!(parse_receipt_seq("rh/team/alpha/wal/17/2"), Ok(17));
        assert_eq!(parse_receipt_seq("rh/a/b/c/d/123/1"), Ok(123));
        assert!(parse_receipt_seq("garbage").is_err());
        assert!(parse_receipt_seq("rh/q/notanumber/1").is_err());
        assert!(parse_receipt_seq("rh/q/1/notanumber").is_err());
        assert!(parse_receipt_seq("rh//1/1").is_err());
        assert!(parse_receipt_seq("rh/1/2").is_err());
    }
}

//! The SQS service simulator.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simworld::{Op, Service, SimDuration, SimInstant, SimWorld};

use crate::error::{Result, SqsError};

/// SQS's 2009 limit on message body size, in bytes.
pub const MAX_MESSAGE_SIZE: usize = 8 * 1024;

/// Maximum messages returnable by one `ReceiveMessage`.
pub const MAX_RECEIVE_BATCH: usize = 10;

/// Message retention: SQS deletes messages older than four days (§4.3 —
/// the paper's garbage-collection story leans on this).
pub const RETENTION: SimDuration = SimDuration::from_days(4);

/// Default visibility timeout (the 2009 service default of 30 seconds).
pub const DEFAULT_VISIBILITY_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// How many storage servers a queue's messages spread over; receives
/// sample a subset, which is why one call can miss messages.
pub const QUEUE_SERVERS: usize = 8;

/// A message handed back by `ReceiveMessage`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReceivedMessage {
    /// Stable message identifier (same across re-deliveries).
    pub message_id: String,
    /// Receipt handle for this delivery; required by `DeleteMessage`.
    pub receipt_handle: String,
    /// Message body.
    pub body: String,
}

#[derive(Clone, Debug)]
struct StoredMessage {
    seq: u64,
    message_id: String,
    body: String,
    sent_at: SimInstant,
    /// Hidden until this instant (visibility timeout after a delivery).
    visible_at: SimInstant,
    /// Which storage server holds the message.
    server: usize,
    /// Delivery count; embedded in receipt handles.
    deliveries: u64,
}

#[derive(Debug)]
struct Queue {
    name: String,
    messages: BTreeMap<u64, StoredMessage>,
    visibility_timeout: SimDuration,
}

#[derive(Default)]
struct Inner {
    queues: BTreeMap<String, Queue>, // keyed by URL
    next_seq: u64,
}

/// The simulated Simple Queueing Service.
///
/// Semantics reproduced from the 2009 service, as described in §2.3 of
/// the paper:
///
/// * 8 KB Unicode message bodies;
/// * `ReceiveMessage` **samples a subset of servers** and returns at most
///   10 of the visible messages it finds there — callers must repeat
///   the call until they have everything;
/// * a delivered message is hidden for the **visibility timeout**; if the
///   consumer does not delete it in time it becomes visible again (so
///   exactly one client processes a message at a time, but a message may
///   be processed more than once);
/// * messages older than **four days** evaporate;
/// * best-effort FIFO ordering, no more.
///
/// # Examples
///
/// ```
/// use sim_sqs::Sqs;
/// use simworld::SimWorld;
///
/// let world = SimWorld::counting();
/// let sqs = Sqs::new(&world);
/// let url = sqs.create_queue("wal-client-1");
/// sqs.send_message(&url, "begin txn 7")?;
/// let got = sqs.receive_message(&url, 10)?;
/// if let Some(msg) = got.first() {
///     sqs.delete_message(&url, &msg.receipt_handle)?;
/// }
/// # Ok::<(), sim_sqs::SqsError>(())
/// ```
#[derive(Clone)]
pub struct Sqs {
    world: SimWorld,
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Sqs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Sqs")
            .field("queues", &inner.queues.len())
            .finish_non_exhaustive()
    }
}

impl Sqs {
    /// Connects a new simulated SQS endpoint to `world`.
    pub fn new(world: &SimWorld) -> Sqs {
        Sqs {
            world: world.clone(),
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Creates a queue (idempotent) and returns its URL.
    pub fn create_queue(&self, name: impl Into<String>) -> String {
        let name = name.into();
        let url = format!("https://sqs.sim/{name}");
        let mut inner = self.inner.lock();
        self.world
            .record_op(Op::SqsCreateQueue, name.len() as u64, url.len() as u64);
        inner.queues.entry(url.clone()).or_insert_with(|| Queue {
            name,
            messages: BTreeMap::new(),
            visibility_timeout: DEFAULT_VISIBILITY_TIMEOUT,
        });
        url
    }

    /// Changes a queue's visibility timeout.
    ///
    /// # Errors
    ///
    /// [`SqsError::QueueDoesNotExist`].
    pub fn set_visibility_timeout(&self, url: &str, timeout: SimDuration) -> Result<()> {
        let mut inner = self.inner.lock();
        let queue = queue_mut(&mut inner, url)?;
        queue.visibility_timeout = timeout;
        Ok(())
    }

    /// Enqueues a message; returns its message id.
    ///
    /// # Errors
    ///
    /// [`SqsError::MessageTooLong`] past 8 KB;
    /// [`SqsError::QueueDoesNotExist`].
    pub fn send_message(&self, url: &str, body: impl Into<String>) -> Result<String> {
        let body = body.into();
        if body.len() > MAX_MESSAGE_SIZE {
            return Err(SqsError::MessageTooLong {
                size: body.len(),
                limit: MAX_MESSAGE_SIZE,
            });
        }
        let server = self.world.rand_below(QUEUE_SERVERS as u64) as usize;
        let now = self.world.now();
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        let seq = inner.next_seq;
        let queue = queue_mut(&mut inner, url)?;
        let message_id = format!("msg-{seq:016x}");
        let size = body.len() as u64;
        queue.messages.insert(
            seq,
            StoredMessage {
                seq,
                message_id: message_id.clone(),
                body,
                sent_at: now,
                visible_at: now,
                server,
                deliveries: 0,
            },
        );
        self.world.record_op(Op::SqsSendMessage, size, 0);
        self.world.adjust_stored(Service::Sqs, size as i64);
        Ok(message_id)
    }

    /// Receives up to `max` visible messages from a sampled subset of the
    /// queue's servers. Returned messages become invisible for the
    /// queue's visibility timeout.
    ///
    /// An empty result does **not** mean the queue is empty — repeat the
    /// call (the commit daemon of the paper's Architecture 3 does exactly
    /// that).
    ///
    /// # Errors
    ///
    /// [`SqsError::TooManyMessagesRequested`] past 10;
    /// [`SqsError::QueueDoesNotExist`].
    pub fn receive_message(&self, url: &str, max: usize) -> Result<Vec<ReceivedMessage>> {
        if max > MAX_RECEIVE_BATCH {
            return Err(SqsError::TooManyMessagesRequested { requested: max });
        }
        let max = max.max(1);
        // Sample a subset of servers: each server is polled with p = 1/2,
        // with at least one server always polled.
        let sample_mask = {
            let mut mask = [false; QUEUE_SERVERS];
            for m in mask.iter_mut() {
                *m = self.world.rand_below(2) == 1;
            }
            if mask.iter().all(|m| !m) {
                mask[self.world.rand_below(QUEUE_SERVERS as u64) as usize] = true;
            }
            mask
        };
        let now = self.world.now();
        let mut inner = self.inner.lock();
        let queue = queue_mut(&mut inner, url)?;
        let freed = expire_old_messages(queue, now);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        let timeout = queue.visibility_timeout;
        let mut picked: Vec<u64> = queue
            .messages
            .values()
            .filter(|m| sample_mask[m.server] && m.visible_at <= now)
            .map(|m| m.seq)
            .collect();
        picked.sort_unstable(); // best-effort FIFO within the sample
        picked.truncate(max);
        let name = queue.name.clone();
        let mut out = Vec::with_capacity(picked.len());
        let mut bytes_out = 0u64;
        for seq in picked {
            let msg = queue.messages.get_mut(&seq).expect("picked from this map");
            msg.deliveries += 1;
            msg.visible_at = now + timeout;
            bytes_out += msg.body.len() as u64;
            out.push(ReceivedMessage {
                message_id: msg.message_id.clone(),
                receipt_handle: format!("rh/{name}/{seq}/{}", msg.deliveries),
                body: msg.body.clone(),
            });
        }
        self.world.record_op(Op::SqsReceiveMessage, 0, bytes_out);
        Ok(out)
    }

    /// Deletes a message by receipt handle. Deleting an already-deleted
    /// message succeeds, so replays are harmless.
    ///
    /// # Errors
    ///
    /// [`SqsError::InvalidReceiptHandle`] for malformed handles;
    /// [`SqsError::QueueDoesNotExist`].
    pub fn delete_message(&self, url: &str, receipt_handle: &str) -> Result<()> {
        let seq = parse_receipt_seq(receipt_handle)?;
        let mut inner = self.inner.lock();
        let queue = queue_mut(&mut inner, url)?;
        self.world
            .record_op(Op::SqsDeleteMessage, receipt_handle.len() as u64, 0);
        if let Some(msg) = queue.messages.remove(&seq) {
            self.world
                .adjust_stored(Service::Sqs, -(msg.body.len() as i64));
        }
        Ok(())
    }

    /// `GetQueueAttributes: ApproximateNumberOfMessages`. The count is an
    /// approximation (it reflects a server sample), exactly as the paper
    /// notes in §2.3.
    ///
    /// # Errors
    ///
    /// [`SqsError::QueueDoesNotExist`].
    pub fn approximate_number_of_messages(&self, url: &str) -> Result<usize> {
        // Sample half of the servers and extrapolate.
        let sampled: Vec<usize> = (0..QUEUE_SERVERS)
            .filter(|_| self.world.rand_below(2) == 1)
            .collect();
        let now = self.world.now();
        let mut inner = self.inner.lock();
        let queue = queue_mut(&mut inner, url)?;
        let freed = expire_old_messages(queue, now);
        if freed > 0 {
            self.world.adjust_stored(Service::Sqs, -(freed as i64));
        }
        self.world.record_op(Op::SqsGetQueueAttributes, 0, 16);
        if sampled.is_empty() {
            return Ok(0);
        }
        let on_sample = queue
            .messages
            .values()
            .filter(|m| sampled.contains(&m.server))
            .count();
        Ok(on_sample * QUEUE_SERVERS / sampled.len())
    }

    // --- authoritative (non-billed) views for invariant checks ---

    /// Exact live message count, ignoring sampling and without billing.
    /// For tests and property validators only.
    pub fn exact_message_count(&self, url: &str) -> usize {
        let now = self.world.now();
        let mut inner = self.inner.lock();
        match inner.queues.get_mut(url) {
            Some(queue) => {
                let freed = expire_old_messages(queue, now);
                if freed > 0 {
                    self.world.adjust_stored(Service::Sqs, -(freed as i64));
                }
                queue.messages.len()
            }
            None => 0,
        }
    }

    /// All live message bodies, unbilled and ignoring visibility. For
    /// tests and property validators only.
    pub fn peek_all(&self, url: &str) -> Vec<String> {
        let now = self.world.now();
        let mut inner = self.inner.lock();
        match inner.queues.get_mut(url) {
            Some(queue) => {
                let freed = expire_old_messages(queue, now);
                if freed > 0 {
                    self.world.adjust_stored(Service::Sqs, -(freed as i64));
                }
                queue.messages.values().map(|m| m.body.clone()).collect()
            }
            None => Vec::new(),
        }
    }
}

/// Drops messages past the retention window; returns the freed bytes so
/// the caller can settle the stored-bytes gauge.
fn expire_old_messages(queue: &mut Queue, now: SimInstant) -> u64 {
    let mut freed = 0;
    queue.messages.retain(|_, m| {
        let keep = now.saturating_since(m.sent_at) <= RETENTION;
        if !keep {
            freed += m.body.len() as u64;
        }
        keep
    });
    freed
}

fn parse_receipt_seq(handle: &str) -> Result<u64> {
    let parts: Vec<&str> = handle.split('/').collect();
    if parts.len() == 4 && parts[0] == "rh" {
        if let Ok(seq) = parts[2].parse::<u64>() {
            return Ok(seq);
        }
    }
    Err(SqsError::InvalidReceiptHandle {
        handle: handle.to_string(),
    })
}

fn queue_mut<'a>(inner: &'a mut Inner, url: &str) -> Result<&'a mut Queue> {
    inner
        .queues
        .get_mut(url)
        .ok_or_else(|| SqsError::QueueDoesNotExist {
            url: url.to_string(),
        })
}

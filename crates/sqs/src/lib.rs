//! # sim-sqs — a simulated Amazon SQS (January 2009)
//!
//! An in-process message queue reproducing the SQS semantics the paper
//! *Making a Cloud Provenance-Aware* (TaPP '09) builds its third
//! architecture on:
//!
//! * 8 KB Unicode message bodies;
//! * sampled `ReceiveMessage` (1–10 messages; one call may miss messages
//!   that exist — callers repeat until done);
//! * **per-queue locking** under a shared queue map, so operations on
//!   different queues never contend;
//! * per-delivery **receipt handles** and a **visibility timeout** that
//!   turns the queue into a coarse distributed lock;
//! * `ApproximateNumberOfMessages` that is genuinely approximate;
//! * automatic deletion of messages older than four days;
//! * per-operation billing meters feeding the [`simworld`] ledger.
//!
//! The paper uses one SQS queue per client as a **write-ahead log**: a
//! transaction's records are enqueued, a commit record marks them
//! durable, and a commit daemon drains the queue into S3/SimpleDB.
//!
//! # Examples
//!
//! ```
//! use sim_sqs::Sqs;
//! use simworld::SimWorld;
//!
//! let world = SimWorld::counting();
//! let sqs = Sqs::new(&world);
//! let wal = sqs.create_queue("wal");
//! sqs.send_message(&wal, "begin 1 3")?;
//! sqs.send_message(&wal, "prov 1 type=file")?;
//! sqs.send_message(&wal, "commit 1")?;
//!
//! // Drain: repeat ReceiveMessage until everything has been seen.
//! let mut seen = 0;
//! while seen < 3 {
//!     for msg in sqs.receive_message(&wal, 10)? {
//!         seen += 1;
//!         sqs.delete_message(&wal, &msg.receipt_handle)?;
//!     }
//! }
//! # Ok::<(), sim_sqs::SqsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod service;

pub use error::{Result, SqsError};
pub use service::{
    BatchEntryOutcome, ReceivedMessage, Sqs, DEFAULT_VISIBILITY_TIMEOUT, MAX_BATCH_ENTRIES,
    MAX_BATCH_PAYLOAD, MAX_MESSAGE_SIZE, MAX_RECEIVE_BATCH, QUEUE_SERVERS, RETENTION,
};

#[cfg(test)]
mod tests;

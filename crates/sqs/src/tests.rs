//! Unit tests for the SQS simulator.

use simworld::{Op, Service, SimDuration, SimWorld};

use crate::{Sqs, SqsError, DEFAULT_VISIBILITY_TIMEOUT, MAX_MESSAGE_SIZE, RETENTION};

fn setup(seed: u64) -> (SimWorld, Sqs, String) {
    let world = SimWorld::new(seed);
    let sqs = Sqs::new(&world);
    let url = sqs.create_queue("q");
    (world, sqs, url)
}

/// Drains a queue by repeating ReceiveMessage (sampling means a single
/// call is never authoritative), deleting everything received.
fn drain(sqs: &Sqs, url: &str, expected: usize) -> Vec<String> {
    let mut bodies = Vec::new();
    let mut idle_rounds = 0;
    while bodies.len() < expected && idle_rounds < 200 {
        let got = sqs.receive_message(url, 10).unwrap();
        if got.is_empty() {
            idle_rounds += 1;
            continue;
        }
        idle_rounds = 0;
        for msg in got {
            bodies.push(msg.body.clone());
            sqs.delete_message(url, &msg.receipt_handle).unwrap();
        }
    }
    bodies
}

#[test]
fn send_receive_delete_round_trip() {
    let (_, sqs, url) = setup(1);
    sqs.send_message(&url, "hello").unwrap();
    let bodies = drain(&sqs, &url, 1);
    assert_eq!(bodies, vec!["hello"]);
    assert_eq!(sqs.exact_message_count(&url), 0);
}

#[test]
fn create_queue_is_idempotent_and_urls_are_stable() {
    let (_, sqs, url) = setup(2);
    sqs.send_message(&url, "x").unwrap();
    let url2 = sqs.create_queue("q");
    assert_eq!(url, url2);
    assert_eq!(
        sqs.exact_message_count(&url2),
        1,
        "recreate must not clear the queue"
    );
}

#[test]
fn message_size_limit() {
    let (_, sqs, url) = setup(3);
    let at_limit = "x".repeat(MAX_MESSAGE_SIZE);
    sqs.send_message(&url, at_limit).unwrap();
    let over = "x".repeat(MAX_MESSAGE_SIZE + 1);
    assert!(matches!(
        sqs.send_message(&url, over),
        Err(SqsError::MessageTooLong { .. })
    ));
}

#[test]
fn receive_respects_batch_limit() {
    let (_, sqs, url) = setup(4);
    assert!(matches!(
        sqs.receive_message(&url, 11),
        Err(SqsError::ReceiveCountOutOfRange { requested: 11 })
    ));
    for i in 0..50 {
        sqs.send_message(&url, format!("m{i}")).unwrap();
    }
    for _ in 0..20 {
        assert!(sqs.receive_message(&url, 10).unwrap().len() <= 10);
    }
}

#[test]
fn sampling_can_miss_messages_but_repetition_finds_all() {
    let (_, sqs, url) = setup(5);
    for i in 0..40 {
        sqs.send_message(&url, format!("m{i:02}")).unwrap();
    }
    // One receive is usually partial (40 messages spread over 8 servers,
    // half sampled, max 10 returned).
    let first = sqs.receive_message(&url, 10).unwrap();
    assert!(first.len() <= 10);
    // Repetition plus deletion retrieves every message exactly once.
    let mut bodies: Vec<String> = first
        .iter()
        .map(|m| {
            sqs.delete_message(&url, &m.receipt_handle).unwrap();
            m.body.clone()
        })
        .collect();
    bodies.extend(drain(&sqs, &url, 40 - bodies.len()));
    bodies.sort();
    let expected: Vec<String> = (0..40).map(|i| format!("m{i:02}")).collect();
    assert_eq!(bodies, expected);
}

#[test]
fn visibility_timeout_hides_then_redelivers() {
    let (world, sqs, url) = setup(6);
    sqs.send_message(&url, "once").unwrap();
    // Find it.
    let msg = loop {
        let got = sqs.receive_message(&url, 10).unwrap();
        if let Some(m) = got.into_iter().next() {
            break m;
        }
    };
    // While invisible, repeated receives never return it.
    for _ in 0..30 {
        assert!(sqs.receive_message(&url, 10).unwrap().is_empty());
    }
    // After the visibility timeout it reappears (crash-recovery path).
    world.advance(DEFAULT_VISIBILITY_TIMEOUT + SimDuration::from_secs(1));
    let again = loop {
        let got = sqs.receive_message(&url, 10).unwrap();
        if let Some(m) = got.into_iter().next() {
            break m;
        }
    };
    assert_eq!(again.message_id, msg.message_id);
    assert_ne!(
        again.receipt_handle, msg.receipt_handle,
        "new delivery, new handle"
    );
}

#[test]
fn configurable_visibility_timeout() {
    let (world, sqs, url) = setup(7);
    sqs.set_visibility_timeout(&url, SimDuration::from_secs(2))
        .unwrap();
    sqs.send_message(&url, "m").unwrap();
    while sqs.receive_message(&url, 10).unwrap().is_empty() {}
    world.advance(SimDuration::from_secs(3));
    // Visible again already after 3s.
    let mut seen = false;
    for _ in 0..50 {
        if !sqs.receive_message(&url, 10).unwrap().is_empty() {
            seen = true;
            break;
        }
    }
    assert!(seen);
}

#[test]
fn delete_with_stale_handle_is_harmless() {
    let (world, sqs, url) = setup(8);
    sqs.send_message(&url, "m").unwrap();
    let first = loop {
        let got = sqs.receive_message(&url, 10).unwrap();
        if let Some(m) = got.into_iter().next() {
            break m;
        }
    };
    world.advance(DEFAULT_VISIBILITY_TIMEOUT + SimDuration::from_secs(1));
    let second = loop {
        let got = sqs.receive_message(&url, 10).unwrap();
        if let Some(m) = got.into_iter().next() {
            break m;
        }
    };
    // Delete via the *old* handle, then replay the delete via the new one.
    sqs.delete_message(&url, &first.receipt_handle).unwrap();
    sqs.delete_message(&url, &second.receipt_handle).unwrap();
    assert_eq!(sqs.exact_message_count(&url), 0);
}

#[test]
fn malformed_receipt_handle_rejected() {
    let (_, sqs, url) = setup(9);
    assert!(matches!(
        sqs.delete_message(&url, "garbage"),
        Err(SqsError::InvalidReceiptHandle { .. })
    ));
    assert!(matches!(
        sqs.delete_message(&url, "rh/q/notanumber/1"),
        Err(SqsError::InvalidReceiptHandle { .. })
    ));
}

#[test]
fn missing_queue_errors() {
    let (_, sqs, _) = setup(10);
    let bad = "https://sqs.sim/never-created";
    assert!(matches!(
        sqs.send_message(bad, "x"),
        Err(SqsError::QueueDoesNotExist { .. })
    ));
    assert!(matches!(
        sqs.receive_message(bad, 1),
        Err(SqsError::QueueDoesNotExist { .. })
    ));
    assert!(matches!(
        sqs.approximate_number_of_messages(bad),
        Err(SqsError::QueueDoesNotExist { .. })
    ));
}

#[test]
fn approximate_count_is_in_the_right_ballpark() {
    let (_, sqs, url) = setup(11);
    for i in 0..200 {
        sqs.send_message(&url, format!("m{i}")).unwrap();
    }
    // Average several approximations; each samples half the servers and
    // extrapolates, so the mean should land near 200.
    let total: usize = (0..32)
        .map(|_| sqs.approximate_number_of_messages(&url).unwrap())
        .sum();
    let mean = total / 32;
    assert!(
        (100..=300).contains(&mean),
        "mean approximation {mean} too far from 200"
    );
}

#[test]
fn retention_expires_old_messages() {
    let (world, sqs, url) = setup(12);
    sqs.send_message(&url, "doomed").unwrap();
    world.advance(RETENTION + SimDuration::from_hours(1));
    assert_eq!(sqs.exact_message_count(&url), 0);
    assert!(sqs.receive_message(&url, 10).unwrap().is_empty());
    assert_eq!(
        world.meters().stored_bytes(Service::Sqs),
        0,
        "expiry frees storage"
    );
}

#[test]
fn best_effort_fifo_within_sample() {
    let (_, sqs, url) = setup(13);
    for i in 0..20 {
        sqs.send_message(&url, format!("{i:02}")).unwrap();
    }
    // Every batch is internally ordered by send sequence.
    for _ in 0..10 {
        let got = sqs.receive_message(&url, 10).unwrap();
        let bodies: Vec<&str> = got.iter().map(|m| m.body.as_str()).collect();
        let mut sorted = bodies.clone();
        sorted.sort();
        assert_eq!(bodies, sorted);
    }
}

#[test]
fn billing_and_storage_gauge() {
    let (world, sqs, url) = setup(14);
    let before = world.meters();
    sqs.send_message(&url, "12345").unwrap();
    let delta = world.meters() - before;
    assert_eq!(delta.op_count(Op::SqsSendMessage), 1);
    assert_eq!(delta.bytes_in(), 5);
    assert_eq!(world.meters().stored_bytes(Service::Sqs), 5);

    let bodies = drain(&sqs, &url, 1);
    assert_eq!(bodies.len(), 1);
    assert_eq!(world.meters().stored_bytes(Service::Sqs), 0);
    assert!(world.meters().op_count(Op::SqsReceiveMessage) >= 1);
    assert_eq!(world.meters().op_count(Op::SqsDeleteMessage), 1);
}

#[test]
fn message_ids_are_unique_and_stable() {
    let (world, sqs, url) = setup(15);
    let id1 = sqs.send_message(&url, "a").unwrap();
    let id2 = sqs.send_message(&url, "b").unwrap();
    assert_ne!(id1, id2);
    // Redelivery keeps the id.
    let m = loop {
        let got = sqs.receive_message(&url, 10).unwrap();
        if let Some(m) = got.into_iter().next() {
            break m;
        }
    };
    world.advance(DEFAULT_VISIBILITY_TIMEOUT + SimDuration::from_secs(1));
    let mut redelivered = None;
    for _ in 0..100 {
        for got in sqs.receive_message(&url, 10).unwrap() {
            if got.message_id == m.message_id {
                redelivered = Some(got);
            }
        }
        if redelivered.is_some() {
            break;
        }
    }
    assert!(
        redelivered.is_some(),
        "message redelivered with the same id"
    );
}

#[test]
fn queue_names_with_slashes_round_trip() {
    // Regression: receipt handles are `rh/{name}/{seq}/{deliveries}`,
    // so a queue name containing `/` used to produce handles that
    // `DeleteMessage` rejected as invalid.
    let (_, sqs, _) = setup(20);
    let url = sqs.create_queue("team/alpha/wal");
    sqs.send_message(&url, "payload").unwrap();
    let bodies = drain(&sqs, &url, 1);
    assert_eq!(bodies, vec!["payload"]);
    assert_eq!(sqs.exact_message_count(&url), 0);
}

#[test]
fn receive_zero_is_an_error_not_a_surprise_message() {
    // Regression: `receive_message(url, 0)` used to bump the count to 1
    // and hand back a message the caller never asked for.
    let (_, sqs, url) = setup(21);
    sqs.send_message(&url, "m").unwrap();
    assert!(matches!(
        sqs.receive_message(&url, 0),
        Err(SqsError::ReceiveCountOutOfRange { requested: 0 })
    ));
    // The rejected call must not have delivered (and hidden) anything.
    let got = drain(&sqs, &url, 1);
    assert_eq!(got, vec!["m"]);
}

#[test]
fn expiry_on_send_drains_a_write_only_queue() {
    // Regression: retention was enforced only on read paths, so a
    // write-only queue's expired messages inflated the stored-bytes
    // gauge forever.
    let (world, sqs, url) = setup(22);
    sqs.send_message(&url, "x".repeat(100)).unwrap();
    assert_eq!(world.meters().stored_bytes(Service::Sqs), 100);
    world.advance(RETENTION + SimDuration::from_hours(1));
    // The next *send* — no read ever happens — must reap the corpse.
    sqs.send_message(&url, "y".repeat(7)).unwrap();
    assert_eq!(world.meters().stored_bytes(Service::Sqs), 7);
    assert_eq!(sqs.peek_all(&url), vec!["y".repeat(7)]);
}

#[test]
fn failed_send_mutates_no_state() {
    // Regression: a send to a missing queue used to burn a sequence
    // number (and an RNG draw) before failing, so the error path left
    // fingerprints on later message ids and on replay determinism.
    let run = |with_failed_send: bool| -> (String, Vec<Vec<String>>) {
        let world = SimWorld::new(23);
        let sqs = Sqs::new(&world);
        let url = sqs.create_queue("q");
        if with_failed_send {
            assert!(matches!(
                sqs.send_message("https://sqs.sim/ghost", "lost"),
                Err(SqsError::QueueDoesNotExist { .. })
            ));
        }
        let id = sqs.send_message(&url, "kept").unwrap();
        let receives = (0..10)
            .map(|_| {
                sqs.receive_message(&url, 10)
                    .unwrap()
                    .into_iter()
                    .map(|m| m.receipt_handle)
                    .collect()
            })
            .collect();
        (id, receives)
    };
    let clean = run(false);
    let with_failure = run(true);
    assert_eq!(clean.0, format!("msg-{:016x}", 1));
    assert_eq!(
        clean, with_failure,
        "an error-path send must leave the sequence, RNG and meters untouched"
    );
}

#[test]
fn peek_all_sees_everything_without_billing() {
    let (world, sqs, url) = setup(16);
    sqs.send_message(&url, "a").unwrap();
    sqs.send_message(&url, "b").unwrap();
    let before = world.meters();
    let all = sqs.peek_all(&url);
    assert_eq!(all.len(), 2);
    let delta = world.meters() - before;
    assert_eq!(delta.total_ops(), 0);
}

// --- batch operations ---

#[test]
fn send_message_batch_round_trips_in_one_request() {
    let (world, sqs, url) = setup(20);
    let bodies: Vec<String> = (0..7).map(|i| format!("b{i}")).collect();
    let before = world.meters();
    let out = sqs.send_message_batch(&url, &bodies).unwrap();
    let delta = world.meters() - before;
    assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
    assert_eq!(delta.op_count(Op::SqsSendMessageBatch), 1);
    assert_eq!(delta.batch_entry_count(Op::SqsSendMessageBatch), 7);
    assert_eq!(delta.op_count(Op::SqsSendMessage), 0);
    assert_eq!(sqs.exact_message_count(&url), 7);
    let mut drained = drain(&sqs, &url, 7);
    drained.sort();
    let mut want = bodies.clone();
    want.sort();
    assert_eq!(drained, want);
}

#[test]
fn send_message_batch_allocates_contiguous_sequences() {
    let (_, sqs, url) = setup(21);
    let bodies: Vec<String> = (0..5).map(|i| format!("m{i}")).collect();
    let out = sqs.send_message_batch(&url, &bodies).unwrap();
    let ids: Vec<String> = out.into_iter().map(|r| r.unwrap()).collect();
    let want: Vec<String> = (1..=5).map(|seq| format!("msg-{seq:016x}")).collect();
    assert_eq!(
        ids, want,
        "one fetch_add reservation, contiguous and ordered"
    );
    // The next point send continues right after the reservation.
    assert_eq!(
        sqs.send_message(&url, "tail").unwrap(),
        format!("msg-{:016x}", 6)
    );
}

#[test]
fn send_message_batch_limits_are_enforced_and_mutate_nothing() {
    let (world, sqs, url) = setup(22);
    let before = world.meters();
    assert_eq!(sqs.send_message_batch(&url, &[]), Err(SqsError::EmptyBatch));
    let eleven: Vec<String> = (0..11).map(|i| format!("m{i}")).collect();
    assert_eq!(
        sqs.send_message_batch(&url, &eleven),
        Err(SqsError::TooManyBatchEntries { submitted: 11 })
    );
    // Nine 8 KB bodies: every entry is individually legal, but the sum
    // (72 KB) crosses MAX_BATCH_PAYLOAD (64 KB).
    let heavy: Vec<String> = (0..9).map(|_| "x".repeat(MAX_MESSAGE_SIZE)).collect();
    assert!(matches!(
        sqs.send_message_batch(&url, &heavy),
        Err(SqsError::BatchPayloadTooLarge { size, limit })
            if size == 9 * MAX_MESSAGE_SIZE && limit == crate::MAX_BATCH_PAYLOAD
    ));
    assert_eq!(
        sqs.send_message_batch("https://sqs.sim/nope", &eleven[..2]),
        Err(SqsError::QueueDoesNotExist {
            url: "https://sqs.sim/nope".to_string()
        })
    );
    let delta = world.meters() - before;
    assert_eq!(delta.total_ops(), 0, "rejected batches leave no trace");
    assert_eq!(sqs.exact_message_count(&url), 0);
    // And the sequence was never touched: the next send is msg 1.
    assert_eq!(
        sqs.send_message(&url, "first").unwrap(),
        format!("msg-{:016x}", 1)
    );
}

#[test]
fn failed_batch_entries_burn_no_sequence_or_rng() {
    // Two identical worlds: one submits a batch carrying a poisoned
    // entry, the other submits only the healthy entries. Everything
    // observable downstream — message ids, server placement (via the
    // shared RNG stream), meters' entry counts — must agree.
    let run = |poisoned: bool| {
        let (world, sqs, url) = setup(23);
        let mut bodies = vec!["alpha".to_string()];
        if poisoned {
            bodies.push("x".repeat(MAX_MESSAGE_SIZE + 1));
        }
        bodies.push("beta".to_string());
        let out = sqs.send_message_batch(&url, &bodies).unwrap();
        let ids: Vec<String> = out.into_iter().filter_map(|r| r.ok()).collect();
        // Drain deterministically off the same RNG stream.
        let mut drained = drain(&sqs, &url, 2);
        drained.sort();
        (
            ids,
            drained,
            world.rand_u64(),
            world.meters().batch_entry_count(Op::SqsSendMessageBatch),
        )
    };
    let clean = run(false);
    let with_failure = run(true);
    assert_eq!(
        clean.0,
        vec![format!("msg-{:016x}", 1), format!("msg-{:016x}", 2)]
    );
    assert_eq!(
        clean, with_failure,
        "a rejected entry must leave the sequence, RNG and meters untouched"
    );
}

#[test]
fn send_message_batch_reports_entry_failures_in_place() {
    let (_, sqs, url) = setup(24);
    let bodies = vec![
        "ok0".to_string(),
        "y".repeat(MAX_MESSAGE_SIZE + 5),
        "ok2".to_string(),
    ];
    let out = sqs.send_message_batch(&url, &bodies).unwrap();
    assert!(out[0].is_ok());
    assert_eq!(
        out[1],
        Err(SqsError::MessageTooLong {
            size: MAX_MESSAGE_SIZE + 5,
            limit: MAX_MESSAGE_SIZE
        })
    );
    assert!(out[2].is_ok());
    assert_eq!(sqs.exact_message_count(&url), 2);
}

#[test]
fn delete_message_batch_deletes_in_one_request() {
    let (world, sqs, url) = setup(25);
    for i in 0..6 {
        sqs.send_message(&url, format!("m{i}")).unwrap();
    }
    // Gather handles without deleting.
    sqs.set_visibility_timeout(&url, SimDuration::from_secs(3600))
        .unwrap();
    let mut handles = Vec::new();
    while handles.len() < 6 {
        for msg in sqs.receive_message(&url, 10).unwrap() {
            handles.push(msg.receipt_handle);
        }
    }
    let before = world.meters();
    let out = sqs.delete_message_batch(&url, &handles).unwrap();
    let delta = world.meters() - before;
    assert!(out.iter().all(|r| r.is_ok()));
    assert_eq!(delta.op_count(Op::SqsDeleteMessageBatch), 1);
    assert_eq!(delta.batch_entry_count(Op::SqsDeleteMessageBatch), 6);
    assert_eq!(delta.op_count(Op::SqsDeleteMessage), 0);
    assert_eq!(sqs.exact_message_count(&url), 0);
    assert_eq!(world.meters().stored_bytes(Service::Sqs), 0);
}

#[test]
fn delete_message_batch_mixed_entries() {
    let (_, sqs, url) = setup(26);
    sqs.send_message(&url, "keepalive").unwrap();
    sqs.set_visibility_timeout(&url, SimDuration::from_secs(3600))
        .unwrap();
    let mut handle = None;
    while handle.is_none() {
        handle = sqs
            .receive_message(&url, 10)
            .unwrap()
            .into_iter()
            .next()
            .map(|m| m.receipt_handle);
    }
    let handles = vec![
        handle.unwrap(),
        "not-a-handle".to_string(),
        "rh/q/999/1".to_string(), // valid shape, message long gone
    ];
    let out = sqs.delete_message_batch(&url, &handles).unwrap();
    assert!(out[0].is_ok());
    assert!(matches!(out[1], Err(SqsError::InvalidReceiptHandle { .. })));
    assert!(out[2].is_ok(), "deleting an absent message is idempotent");
    assert_eq!(sqs.exact_message_count(&url), 0);
    // Batch-level failures still mutate nothing.
    assert_eq!(
        sqs.delete_message_batch(&url, &[]),
        Err(SqsError::EmptyBatch)
    );
    let eleven: Vec<String> = (0..11).map(|i| format!("rh/q/{i}/1")).collect();
    assert_eq!(
        sqs.delete_message_batch(&url, &eleven),
        Err(SqsError::TooManyBatchEntries { submitted: 11 })
    );
}

#[test]
fn batch_send_is_cheaper_than_point_sends_in_virtual_time() {
    // The tentpole claim at the service layer: same ten messages, one
    // round trip instead of ten.
    let elapsed_point = {
        let (world, sqs, url) = setup(27);
        let t0 = world.now();
        for i in 0..10 {
            sqs.send_message(&url, format!("m{i}")).unwrap();
        }
        world.now() - t0
    };
    let elapsed_batch = {
        let (world, sqs, url) = setup(27);
        let bodies: Vec<String> = (0..10).map(|i| format!("m{i}")).collect();
        let t0 = world.now();
        sqs.send_message_batch(&url, &bodies).unwrap();
        world.now() - t0
    };
    assert!(
        elapsed_batch.as_micros() * 2 < elapsed_point.as_micros(),
        "batch {elapsed_batch:?} must undercut point sends {elapsed_point:?} by >2x"
    );
}

mod throttle {
    use super::*;
    use simworld::ThrottleConfig;

    /// A throttled endpoint: 1 req/s per queue, burst 1, on a world
    /// whose clock only moves when the test advances it.
    fn throttled() -> (SimWorld, Sqs, String) {
        let world = SimWorld::counting();
        let sqs = Sqs::new(&world);
        let url = sqs.create_queue("q");
        sqs.set_throttle(Some(ThrottleConfig::per_shard(1.0)));
        (world, sqs, url)
    }

    #[test]
    fn second_send_to_a_hot_queue_is_rejected_billed_and_unapplied() {
        let (world, sqs, url) = throttled();
        sqs.send_message(&url, "one").unwrap();
        let before = world.meters();
        let err = sqs.send_message(&url, "two").unwrap_err();
        assert!(err.is_throttle(), "got {err}");
        assert!(matches!(err, SqsError::ServiceUnavailable { url: ref u } if *u == url));
        // The rejection is billed as a request…
        let phase = world.meters() - before;
        assert_eq!(phase.op_count(Op::SqsSendMessage), 1);
        assert_eq!(phase.throttled(Service::Sqs), 1);
        // …but nothing was enqueued.
        assert_eq!(sqs.peek_all(&url), vec!["one"]);
    }

    #[test]
    fn tokens_refill_with_virtual_time() {
        let (world, sqs, url) = throttled();
        sqs.send_message(&url, "one").unwrap();
        assert!(sqs.send_message(&url, "two").unwrap_err().is_throttle());
        world.advance(SimDuration::from_secs(1));
        sqs.send_message(&url, "three").unwrap();
    }

    #[test]
    fn different_queues_throttle_independently() {
        let (_, sqs, url_a) = throttled();
        let url_b = sqs.create_queue("other");
        sqs.send_message(&url_a, "m").unwrap();
        assert!(sqs.send_message(&url_a, "m").unwrap_err().is_throttle());
        sqs.send_message(&url_b, "m").unwrap();
    }

    #[test]
    fn rejected_send_burns_no_sequence_number_or_rng_draw() {
        // A throttled run's accepted messages must carry the same ids
        // (and server placements) as an unthrottled run of the accepted
        // sends alone.
        let run = |reject_in_the_middle: bool| {
            let world = SimWorld::counting();
            let sqs = Sqs::new(&world);
            let url = sqs.create_queue("q");
            if reject_in_the_middle {
                sqs.set_throttle(Some(ThrottleConfig::per_shard(1.0)));
            }
            let mut ids = vec![sqs.send_message(&url, "a").unwrap()];
            if reject_in_the_middle {
                assert!(sqs.send_message(&url, "x").unwrap_err().is_throttle());
                world.advance(SimDuration::from_secs(1));
            }
            ids.push(sqs.send_message(&url, "b").unwrap());
            (ids, world.rand_u64())
        };
        // Strip the extra latency draw the rejection itself makes: both
        // runs' *accepted* sends must burn identical seqs. The RNG tail
        // will differ (the rejection draws a latency sample), so compare
        // only the ids.
        assert_eq!(run(false).0, run(true).0);
    }

    #[test]
    fn batch_send_and_deletes_are_throttled_whole() {
        let (world, sqs, url) = throttled();
        let bodies: Vec<String> = (0..3).map(|i| format!("m{i}")).collect();
        sqs.send_message_batch(&url, &bodies).unwrap();
        // The queue's token is spent: the next batch is rejected whole.
        let err = sqs.send_message_batch(&url, &bodies).unwrap_err();
        assert!(err.is_throttle());
        assert_eq!(sqs.exact_message_count(&url), 3);
        // Deletes are throttled writes too.
        world.advance(SimDuration::from_secs(1));
        let got = sqs.receive_message(&url, 10).unwrap();
        assert!(!got.is_empty());
        let handles: Vec<String> = got.iter().map(|m| m.receipt_handle.clone()).collect();
        sqs.delete_message_batch(&url, &handles).unwrap();
        assert!(sqs
            .delete_message_batch(&url, &handles)
            .unwrap_err()
            .is_throttle());
    }

    #[test]
    fn receives_are_never_throttled() {
        let (_, sqs, url) = throttled();
        sqs.send_message(&url, "m").unwrap();
        assert!(sqs.send_message(&url, "m").unwrap_err().is_throttle());
        // Receives sail through an exhausted bucket.
        for _ in 0..20 {
            sqs.receive_message(&url, 10).unwrap();
        }
    }

    #[test]
    fn throttle_off_runs_draw_identical_rng_streams() {
        // The admission check must not perturb the RNG when disabled —
        // pinned by comparing a plain run with a set_throttle(None) run.
        let run = |configure: bool| {
            let world = SimWorld::new(77);
            let sqs = Sqs::new(&world);
            if configure {
                sqs.set_throttle(None);
            }
            let url = sqs.create_queue("q");
            for i in 0..10 {
                sqs.send_message(&url, format!("m{i}")).unwrap();
            }
            (world.now(), world.rand_u64())
        };
        assert_eq!(run(false), run(true));
    }
}

//! Error type for the simulated SQS service.

use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::Sqs`] operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SqsError {
    /// The queue URL does not name a queue
    /// (`AWS.SimpleQueueService.NonExistentQueue`).
    QueueDoesNotExist {
        /// The URL as given.
        url: String,
    },
    /// Message body exceeded the 8 KB limit (`MessageTooLong`).
    MessageTooLong {
        /// Body size in bytes.
        size: usize,
        /// The enforced limit.
        limit: usize,
    },
    /// A receipt handle was not produced by this service
    /// (`ReceiptHandleIsInvalid`).
    InvalidReceiptHandle {
        /// The malformed handle.
        handle: String,
    },
    /// A receive asked for a message count outside `1..=10`
    /// (`ReadCountOutOfRange`). Zero is rejected too: the real API never
    /// hands back a message the caller did not ask for.
    ReceiveCountOutOfRange {
        /// Requested count.
        requested: usize,
    },
    /// A batch call carried no entries (`EmptyBatchRequest`).
    EmptyBatch,
    /// A batch call carried more than
    /// [`crate::MAX_BATCH_ENTRIES`] entries (`TooManyEntriesInBatchRequest`).
    TooManyBatchEntries {
        /// Entries submitted.
        submitted: usize,
    },
    /// The summed body bytes of a `SendMessageBatch` exceeded
    /// [`crate::MAX_BATCH_PAYLOAD`] (`BatchRequestTooLong`).
    BatchPayloadTooLarge {
        /// Total payload bytes submitted.
        size: usize,
        /// The enforced limit.
        limit: usize,
    },
    /// The request rate on the queue exceeded the provisioned limit and
    /// the request was rejected without applying (`ServiceUnavailable`,
    /// HTTP 503). Retry with backoff.
    ServiceUnavailable {
        /// URL of the queue that throttled the request.
        url: String,
    },
}

impl SqsError {
    /// `true` for the retriable 503 rejection.
    pub fn is_throttle(&self) -> bool {
        matches!(self, SqsError::ServiceUnavailable { .. })
    }
}

impl fmt::Display for SqsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqsError::QueueDoesNotExist { url } => write!(f, "queue does not exist: {url}"),
            SqsError::MessageTooLong { size, limit } => {
                write!(f, "message of {size} bytes exceeds the {limit}-byte limit")
            }
            SqsError::InvalidReceiptHandle { handle } => {
                write!(f, "invalid receipt handle: {handle:?}")
            }
            SqsError::ReceiveCountOutOfRange { requested } => {
                write!(
                    f,
                    "{requested} messages requested; the valid range is 1..=10"
                )
            }
            SqsError::EmptyBatch => f.write_str("batch request must carry at least one entry"),
            SqsError::TooManyBatchEntries { submitted } => {
                write!(
                    f,
                    "{submitted} entries submitted; a batch carries at most 10"
                )
            }
            SqsError::BatchPayloadTooLarge { size, limit } => {
                write!(
                    f,
                    "batch payload of {size} bytes exceeds the {limit}-byte limit"
                )
            }
            SqsError::ServiceUnavailable { url } => {
                write!(
                    f,
                    "503 ServiceUnavailable: request rate exceeded on queue {url:?}; retry with backoff"
                )
            }
        }
    }
}

impl Error for SqsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SqsError>;

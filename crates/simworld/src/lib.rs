//! # simworld — deterministic substrate for the PASS-on-AWS simulation
//!
//! This crate provides everything the simulated cloud services
//! ([`sim-s3`](../sim_s3/index.html), [`sim-simpledb`](../sim_simpledb/index.html),
//! [`sim-sqs`](../sim_sqs/index.html)) share:
//!
//! * a **virtual clock** ([`SimInstant`], [`SimDuration`]) — nothing reads
//!   wall time, so runs replay bit-for-bit;
//! * an **event-driven completion scheduler** ([`Scheduler`], with the
//!   pipelined in-flight model on [`SimWorld::begin_pipeline`]) so
//!   overlapping requests and background timers share one deterministic
//!   `(instant, seq)` event order;
//! * a **seeded RNG** and **latency model** so request timing is realistic
//!   yet reproducible;
//! * **metering** ([`MeterBook`], [`MeterSnapshot`]) of every billable
//!   operation and transferred byte, the currency of the paper's analysis;
//! * an **eventually-consistent replicated map** ([`EcMap`]) implementing
//!   the staleness semantics the paper's consistency property targets;
//! * **fault injection** ([`CrashSite`], [`FaultPlan`]) for the crash
//!   scenarios behind the paper's atomicity arguments;
//! * cheap **blobs** ([`Blob`]) and a from-scratch **MD5** ([`Md5`]) for
//!   the `MD5(data ‖ nonce)` consistency token.
//!
//! # Examples
//!
//! ```
//! use simworld::{Blob, EcMap, Op, SimWorld};
//!
//! let world = SimWorld::new(42);
//! let mut store: EcMap<String, Blob> = EcMap::new();
//!
//! let body = Blob::synthetic(7, 64 * 1024);
//! world.record_op(Op::S3Put, body.len(), 0);
//! store.write(&world, "bucket/key".to_string(), Some(body.clone()));
//!
//! world.settle(); // let replication finish
//! let got = store.read(&world, &"bucket/key".to_string()).unwrap();
//! assert_eq!(got.md5(), body.md5());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod adaptive;
mod blob;
mod clock;
mod ecstore;
mod faults;
mod hash;
mod latency;
mod md5;
mod merge;
mod metering;
mod samples;
mod sched;
mod shardmap;
mod throttle;
mod world;

pub use adaptive::AdaptiveDepth;
pub use blob::{Blob, Chunks, CHUNK};
pub use clock::{SimDuration, SimInstant};
pub use ecstore::EcMap;
pub use faults::{CrashSite, Crashed, FaultPlan};
pub use hash::{fnv1a_64, splitmix64};
pub use latency::{LatencyModel, ServiceLatency};
pub use md5::{Md5, Md5Digest};
pub use merge::merged_shard_page;
pub use metering::{
    format_bytes, MeterBook, MeterSnapshot, Op, Service, ServiceMeter, ShardImbalance,
};
pub use samples::{percentiles, LatencySample, Percentiles, SampleLog};
pub use sched::{FiredEvent, SchedEvent, Scheduler, TimerId};
pub use shardmap::{
    clamp_shards, ring_position, MapView, ReplicaPin, ShardCells, ShardMap, ShardPlan, SplitEvent,
    SplitPolicy, MAX_SHARDS,
};
pub use throttle::{ThrottleConfig, TokenBucket};
pub use world::{Consistency, PipelineStats, SimConfig, SimWorld};

//! Provider-side request-rate throttling: deterministic token buckets.
//!
//! AWS meters request *rate*, not just volume: a SimpleDB domain, an S3
//! key-space partition, or an SQS queue that is driven too hard answers
//! `503 ServiceUnavailable` / `SlowDown` and expects the client to back
//! off. The services model that with one [`TokenBucket`] per shard (per
//! queue for SQS): each admitted request takes a token, tokens refill at
//! a configured rate in *virtual* time, and an empty bucket rejects the
//! request without applying it.
//!
//! The bucket is pure arithmetic over [`SimInstant`]s — no RNG, no wall
//! clock — so throttled runs are exactly as reproducible as unthrottled
//! ones.

use crate::clock::SimInstant;

/// Rate limit for one shard (or queue): sustained requests per virtual
/// second plus a burst allowance.
///
/// # Examples
///
/// ```
/// use simworld::{SimDuration, SimInstant, ThrottleConfig, TokenBucket};
///
/// let cfg = ThrottleConfig::per_shard(2.0); // 2 req/s, burst 2
/// let mut bucket = TokenBucket::new(cfg, SimInstant::EPOCH);
/// let t0 = SimInstant::EPOCH;
/// assert!(bucket.try_admit(t0));
/// assert!(bucket.try_admit(t0));
/// assert!(!bucket.try_admit(t0)); // burst spent
/// let later = t0 + SimDuration::from_millis(500); // one token refilled
/// assert!(bucket.try_admit(later));
/// assert!(!bucket.try_admit(later));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThrottleConfig {
    /// Sustained admission rate, in requests per virtual second.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests may land back-to-back before
    /// the rate limit bites.
    pub burst: f64,
}

impl ThrottleConfig {
    /// A per-shard limit with burst equal to one second of rate (at
    /// least one request).
    pub fn per_shard(rate_per_sec: f64) -> ThrottleConfig {
        assert!(
            rate_per_sec > 0.0,
            "throttle rate must be positive; got {rate_per_sec}"
        );
        ThrottleConfig {
            rate_per_sec,
            burst: rate_per_sec.max(1.0),
        }
    }

    /// Overrides the burst allowance (clamped to at least one request).
    pub fn with_burst(mut self, burst: f64) -> ThrottleConfig {
        self.burst = burst.max(1.0);
        self
    }
}

/// Token-bucket state for one shard or queue.
///
/// Created lazily on a shard's first request under throttling, starting
/// full (a cold shard gets its whole burst).
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    config: ThrottleConfig,
    tokens: f64,
    last_refill: SimInstant,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(config: ThrottleConfig, now: SimInstant) -> TokenBucket {
        TokenBucket {
            config,
            tokens: config.burst,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimInstant) {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
        self.last_refill = now;
    }

    /// Admits one request if a token is available, consuming it.
    pub fn try_admit(&mut self, now: SimInstant) -> bool {
        if self.peek(now) {
            self.take();
            true
        } else {
            false
        }
    }

    /// Refills to `now` and reports whether a token is available,
    /// without consuming it. Pair with [`TokenBucket::take`] for
    /// all-or-nothing admission across several buckets (a batch request
    /// that spans shards either lands everywhere or is rejected whole,
    /// leaving every bucket untouched).
    pub fn peek(&mut self, now: SimInstant) -> bool {
        // The epsilon absorbs float accumulation across incremental
        // refills (ten refills of 0.1 sum to just under 1.0), so a
        // bucket refilled in steps admits exactly like one refilled in
        // a single span.
        self.refill(now);
        self.tokens + 1e-9 >= 1.0
    }

    /// Consumes one token unconditionally (may go negative only if
    /// called without a successful [`TokenBucket::peek`]; don't).
    pub fn take(&mut self) {
        self.tokens -= 1.0;
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[test]
    fn refill_is_capped_at_burst() {
        let mut b = TokenBucket::new(ThrottleConfig::per_shard(10.0), SimInstant::EPOCH);
        let much_later = SimInstant::EPOCH + SimDuration::from_hours(1);
        assert!(b.try_admit(much_later));
        // One hour at 10/s would be 36k tokens; the cap is the burst (10).
        assert!(b.available() <= 10.0);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let cfg = ThrottleConfig::per_shard(100.0).with_burst(1.0);
        let mut b = TokenBucket::new(cfg, SimInstant::EPOCH);
        let mut admitted = 0;
        // 1000 attempts over one virtual second at 1ms spacing.
        for i in 0..1000u64 {
            let now = SimInstant::EPOCH + SimDuration::from_millis(i);
            if b.try_admit(now) {
                admitted += 1;
            }
        }
        // ~100/s plus the initial burst token.
        assert!((100..=102).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn peek_take_supports_atomic_multi_shard_admission() {
        let cfg = ThrottleConfig::per_shard(1.0);
        let now = SimInstant::EPOCH;
        let mut a = TokenBucket::new(cfg, now);
        let mut b = TokenBucket::new(cfg, now);
        a.take(); // a is empty, b is full
                  // All-or-nothing: the batch spanning both shards is refused and
                  // b's token survives.
        let all = a.peek(now) && b.peek(now);
        assert!(!all);
        assert!(b.try_admit(now));
    }

    #[test]
    fn time_moving_backwards_does_not_mint_tokens() {
        let cfg = ThrottleConfig::per_shard(1.0);
        let later = SimInstant::EPOCH + SimDuration::from_secs(5);
        let mut b = TokenBucket::new(cfg, later);
        b.take();
        // An earlier timestamp saturates to zero elapsed time.
        assert!(!b.try_admit(SimInstant::EPOCH));
    }

    #[test]
    #[should_panic(expected = "throttle rate must be positive")]
    fn zero_rate_panics() {
        ThrottleConfig::per_shard(0.0);
    }
}

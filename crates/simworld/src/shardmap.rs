//! Range-routed shard maps with hot-shard splitting.
//!
//! PRs 2–3 gave SimpleDB and S3 each their own copy of the same sharding
//! machinery: an `fnv1a_64(key) % n` router, a `Vec` of per-shard
//! `Mutex<EcMap>` tables, an ordered batch-locking helper, and per-shard
//! replica pinning for pagination tokens. This module is that machinery,
//! extracted once — and upgraded from modulo to **range routing**: each
//! shard owns a contiguous span of the 64-bit key-hash ring, so a hot
//! shard can split its span in two and hand off only its own cells,
//! without re-routing a single key outside it.
//!
//! # Routing
//!
//! A key's ring position is [`ring_position`]: FNV-1a, bit-reversed.
//! The bit-reversal turns the low modulo bits into the high range bits,
//! so a fresh power-of-two layout places every key on **exactly the
//! shard `fnv1a_64(key) % n` chose** under the old router (and
//! [`initial ids`](ShardMap::new) are assigned so the stable shard id
//! equals the old modulo index). Static layouts therefore behave — and
//! meter — identically to the pre-range-routing services; only split
//! shards diverge, and only inside the split range.
//!
//! # Splitting
//!
//! When a [`SplitPolicy`] is armed, the map watches two per-shard
//! signals: the shard's share of recent ops (hot keys concentrating on
//! one range) and its throttle rejections (a range whose token bucket
//! keeps running dry). Either trigger splits the shard at the median
//! occupied ring position: the lower half keeps the shard's stable id,
//! the upper half becomes a new shard that records its parent. Splits
//! are free background reorganisations — no RNG, no billing, no clock
//! movement — so converged store state is **byte-identical with
//! splitting on or off**; only placement and admission change.
//!
//! Stable ids never disappear (there are no merges), so a pagination
//! token pinned before a split still resolves: a shard born later walks
//! its parent chain to the nearest pinned ancestor ([`ReplicaPin`]).
//!
//! # Shard-count clamping
//!
//! Both services clamp requested shard counts the same way:
//! `with_shards(0)` is promoted to 1 and oversized requests are capped
//! at [`MAX_SHARDS`]. The clamp lives here ([`clamp_shards`]) so the
//! rule cannot drift between services again.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::clock::SimInstant;
use crate::ecstore::EcMap;
use crate::hash::fnv1a_64;
use crate::throttle::{ThrottleConfig, TokenBucket};
use crate::world::SimWorld;

/// Hard cap on the number of shards a map may hold, whether provisioned
/// up front or grown by splitting. Requests beyond it are silently
/// clamped — the same rule in SimpleDB and S3.
pub const MAX_SHARDS: usize = 256;

/// The one shard-count validation rule: zero becomes one shard,
/// oversized requests cap at [`MAX_SHARDS`].
pub fn clamp_shards(requested: usize) -> usize {
    requested.clamp(1, MAX_SHARDS)
}

/// A key's position on the 64-bit hash ring: FNV-1a, bit-reversed.
///
/// The bit-reversal makes an even power-of-two range layout reproduce
/// the historical `fnv1a_64(key) % n` placement exactly (the low modulo
/// bits become the high range bits), which keeps every pre-existing
/// baseline number intact for static layouts.
pub fn ring_position(key: &str) -> u64 {
    fnv1a_64(key).reverse_bits()
}

/// When to split a hot shard.
///
/// Two independent triggers, either sufficient:
///
/// * **share** — a shard carried more than `max_share` of the window's
///   ops (once the window holds at least `min_ops`); catches key skew.
/// * **rejections** — a shard's token bucket rejected `max_rejects`
///   requests since its last split; catches throttling hot spots even
///   when load is even across the *tenant's* shards (shares near
///   uniform) but too high for each bucket.
///
/// A `max_share` above `1.0` disables the share trigger; `max_rejects`
/// of zero disables the rejection trigger.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitPolicy {
    /// Share of windowed ops above which a shard splits (> 1.0 disables).
    pub max_share: f64,
    /// Minimum ops the window must hold before the share trigger arms.
    pub min_ops: u64,
    /// Throttle rejections on one shard that force a split (0 disables).
    pub max_rejects: u64,
    /// Growth cap; clamped to at least the initial count and at most
    /// [`MAX_SHARDS`].
    pub max_shards: usize,
}

impl SplitPolicy {
    /// Split any shard whose windowed op share exceeds `max_share`.
    pub fn by_share(max_share: f64) -> SplitPolicy {
        SplitPolicy {
            max_share,
            min_ops: 1024,
            max_rejects: 0,
            max_shards: MAX_SHARDS,
        }
    }

    /// Split any shard the throttle rejected `max_rejects` times.
    ///
    /// # Panics
    ///
    /// Panics if `max_rejects` is zero (that would disable the trigger).
    pub fn by_rejections(max_rejects: u64) -> SplitPolicy {
        assert!(max_rejects > 0, "a zero rejection threshold never fires");
        SplitPolicy {
            max_share: 2.0,
            min_ops: 0,
            max_rejects,
            max_shards: MAX_SHARDS,
        }
    }

    /// Overrides the share-trigger warmup.
    pub fn with_min_ops(mut self, min_ops: u64) -> SplitPolicy {
        self.min_ops = min_ops;
        self
    }

    /// Overrides the growth cap (clamped to [`MAX_SHARDS`]).
    pub fn with_max_shards(mut self, max_shards: usize) -> SplitPolicy {
        self.max_shards = clamp_shards(max_shards);
        self
    }
}

/// How a service's shard map is provisioned: the initial shard count
/// (clamped by [`clamp_shards`]) plus an optional split policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardPlan {
    /// Requested initial shard count.
    pub shards: usize,
    /// Hot-shard splitting policy; `None` freezes the layout.
    pub split: Option<SplitPolicy>,
}

impl ShardPlan {
    /// A static layout of `shards` shards (no splitting) — the exact
    /// behaviour of the old `with_shards` constructors.
    pub fn fixed(shards: usize) -> ShardPlan {
        ShardPlan {
            shards,
            split: None,
        }
    }

    /// Arms hot-shard splitting on top of the plan.
    pub fn with_split(mut self, policy: SplitPolicy) -> ShardPlan {
        self.split = Some(policy);
        self
    }
}

/// Record of one completed split, for logs and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitEvent {
    /// Stable id of the shard that split (keeps the lower half).
    pub parent: u32,
    /// Stable id of the new shard (owns the upper half).
    pub child: u32,
    /// Ring position where the child's range begins.
    pub at: u64,
    /// Cells migrated into the child.
    pub moved_cells: usize,
}

/// One read replica pinned per shard, keyed by **stable shard id** — the
/// payload of a pagination token. A scan pins its replicas once at the
/// first page; later pages re-resolve against the then-current layout,
/// and a shard born from a split resolves to its nearest pinned
/// ancestor, so the whole walk stays on one consistent view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaPin {
    entries: BTreeMap<u32, usize>,
}

impl ReplicaPin {
    /// An empty pin.
    pub fn new() -> ReplicaPin {
        ReplicaPin::default()
    }

    /// Pins `replica` for shard `id` (overwrites any prior pin).
    pub fn insert(&mut self, id: u32, replica: usize) {
        self.entries.insert(id, replica);
    }

    /// The replica pinned for shard `id`, if any.
    pub fn get(&self, id: u32) -> Option<usize> {
        self.entries.get(&id).copied()
    }

    /// Number of pinned shards.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(shard id, replica)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.entries.iter().map(|(id, r)| (*id, *r))
    }
}

struct ShardState<V> {
    id: u32,
    start: u64,
    parent: Option<u32>,
    cells: Mutex<EcMap<String, V>>,
}

struct MapState<V> {
    /// Ascending by `start`; `shards[0].start == 0`.
    shards: Vec<ShardState<V>>,
    next_id: u32,
}

#[derive(Default)]
struct GovState {
    /// Lazily-created token bucket per stable shard id.
    buckets: HashMap<u32, TokenBucket>,
    /// Ops per shard since that shard's last (attempted) split.
    window_ops: HashMap<u32, u64>,
    /// Sum of `window_ops` (kept incrementally for the share trigger).
    window_total: u64,
    /// Throttle rejections per shard since its last (attempted) split.
    rejects: HashMap<u32, u64>,
    splits: u64,
}

/// A range-routed table of per-shard [`EcMap`]s — the one sharding layer
/// both SimpleDB domains and S3 buckets are built on.
///
/// # Examples
///
/// ```
/// use simworld::{ShardMap, ShardPlan, SimWorld};
///
/// let world = SimWorld::counting();
/// let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(4));
/// map.with_cells("key", |shard, cells| {
///     cells.write(&world, "key".to_string(), Some(7));
///     assert!(shard < 4);
/// });
/// assert_eq!(map.shard_count(), 4);
/// ```
pub struct ShardMap<V> {
    state: RwLock<MapState<V>>,
    gov: Mutex<GovState>,
    policy: Option<SplitPolicy>,
    initial_shards: usize,
}

impl<V> fmt::Debug for ShardMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("ShardMap")
            .field("shards", &st.shards.len())
            .field("policy", &self.policy)
            .finish()
    }
}

/// Range start of position `p` in a fresh `n`-shard layout: an even
/// slicing of the ring.
fn initial_start(p: usize, n: usize) -> u64 {
    (((p as u128) << 64) / n as u128) as u64
}

/// Stable id of the shard at range position `p` in a fresh `n`-shard
/// layout. For power-of-two `n` the position bits are reversed so the id
/// equals the historical modulo shard index (`fnv1a_64(key) % n`);
/// otherwise ids simply follow range order.
fn initial_id(p: usize, n: usize) -> u32 {
    if n.is_power_of_two() && n > 1 {
        let k = n.trailing_zeros();
        (p as u32).reverse_bits() >> (32 - k)
    } else {
        p as u32
    }
}

/// Index of the shard owning ring position `ring`.
fn position_of<V>(shards: &[ShardState<V>], ring: u64) -> usize {
    shards.partition_point(|s| s.start <= ring) - 1
}

impl<V: Clone> ShardMap<V> {
    /// Builds the map per `plan`: `plan.shards` clamped by
    /// [`clamp_shards`], even ring slices, and the split policy armed if
    /// present (its growth cap raised to at least the initial count).
    pub fn new(plan: ShardPlan) -> ShardMap<V> {
        let n = clamp_shards(plan.shards);
        let shards = (0..n)
            .map(|p| ShardState {
                id: initial_id(p, n),
                start: initial_start(p, n),
                parent: None,
                cells: Mutex::new(EcMap::new()),
            })
            .collect();
        let policy = plan.split.map(|mut sp| {
            sp.max_shards = sp.max_shards.clamp(n, MAX_SHARDS);
            sp
        });
        ShardMap {
            state: RwLock::new(MapState {
                shards,
                next_id: n as u32,
            }),
            gov: Mutex::new(GovState::default()),
            policy,
            initial_shards: n,
        }
    }

    /// The initial (post-clamp) shard count the map was provisioned with
    /// — the denominator for imbalance comparisons against the static
    /// layout.
    pub fn initial_shards(&self) -> usize {
        self.initial_shards
    }

    /// Shards currently live.
    pub fn shard_count(&self) -> usize {
        self.state.read().shards.len()
    }

    /// Stable shard ids in range order.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.state.read().shards.iter().map(|s| s.id).collect()
    }

    /// Splits performed so far.
    pub fn split_count(&self) -> u64 {
        self.gov.lock().splits
    }

    /// The split policy the map runs under, if any.
    pub fn policy(&self) -> Option<SplitPolicy> {
        self.policy
    }

    /// Stable id of the shard currently owning `key`.
    pub fn route(&self, key: &str) -> u32 {
        let st = self.state.read();
        st.shards[position_of(&st.shards, ring_position(key))].id
    }

    /// Routes every key under one read-lock acquisition.
    pub fn route_all<I, S>(&self, keys: I) -> Vec<u32>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let st = self.state.read();
        keys.into_iter()
            .map(|k| st.shards[position_of(&st.shards, ring_position(k.as_ref()))].id)
            .collect()
    }

    /// Runs `f` against the cell map of the shard owning `key`, passing
    /// the shard's stable id alongside. Both the layout read lock and
    /// the shard's cell lock are held for the duration — release before
    /// calling [`ShardMap::note_ops`].
    pub fn with_cells<R>(&self, key: &str, f: impl FnOnce(u32, &mut EcMap<String, V>) -> R) -> R {
        let st = self.state.read();
        let shard = &st.shards[position_of(&st.shards, ring_position(key))];
        let mut cells = shard.cells.lock();
        f(shard.id, &mut cells)
    }

    /// Locks the listed shards in ascending-id order — the one global
    /// order that keeps concurrent batches deadlock-free — and hands `f`
    /// an accessor over all of them (the shared replacement for the
    /// `lock_shards` helpers both services used to carry).
    ///
    /// # Panics
    ///
    /// Panics on an id the map does not hold; callers route first.
    pub fn with_cells_multi<R>(
        &self,
        ids: &[u32],
        f: impl FnOnce(&mut ShardCells<'_, V>) -> R,
    ) -> R {
        let st = self.state.read();
        let mut order: Vec<u32> = ids.to_vec();
        order.sort_unstable();
        order.dedup();
        let mut guards = BTreeMap::new();
        for id in order {
            let shard = st
                .shards
                .iter()
                .find(|s| s.id == id)
                .expect("with_cells_multi: unknown shard id");
            guards.insert(id, shard.cells.lock());
        }
        let mut cells = ShardCells { guards };
        f(&mut cells)
    }

    /// Runs `f` over a consistent view of the current range layout.
    /// Splits are excluded for the duration; individual cell maps still
    /// lock per access.
    pub fn read_view<R>(&self, f: impl FnOnce(&MapView<'_, V>) -> R) -> R {
        let st = self.state.read();
        f(&MapView { state: &st })
    }

    /// Clears all token-bucket state (a service replacing its throttle
    /// config starts every bucket full again).
    pub fn reset_throttle(&self) {
        self.gov.lock().buckets.clear();
    }

    /// All-or-nothing admission across the listed shard ids (duplicates
    /// collapse): either every distinct shard has a token — and one is
    /// taken from each — or no bucket is touched and the request is
    /// rejected. `None` config admits everything. Rejections are
    /// remembered per starved shard for the split policy's rejection
    /// trigger.
    pub fn admit(&self, now: SimInstant, config: Option<ThrottleConfig>, ids: &[u32]) -> bool {
        let Some(cfg) = config else { return true };
        let mut distinct: Vec<u32> = ids.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut gov = self.gov.lock();
        let mut ok = true;
        let mut starved = Vec::new();
        for &id in &distinct {
            let bucket = gov
                .buckets
                .entry(id)
                .or_insert_with(|| TokenBucket::new(cfg, now));
            if !bucket.peek(now) {
                ok = false;
                starved.push(id);
            }
        }
        if ok {
            for id in &distinct {
                gov.buckets
                    .get_mut(id)
                    .expect("bucket created during peek")
                    .take();
            }
        } else {
            for id in starved {
                *gov.rejects.entry(id).or_insert(0) += 1;
            }
        }
        ok
    }

    /// Records shard touches into the split-governance window and then
    /// checks the triggers ([`ShardMap::maybe_split`]). No-op without a
    /// policy. Call *after* releasing any cell guards — a split takes
    /// the layout write lock.
    pub fn note_ops(&self, touched: &[u32]) -> Option<SplitEvent> {
        self.policy?;
        {
            let mut gov = self.gov.lock();
            for &id in touched {
                *gov.window_ops.entry(id).or_insert(0) += 1;
                gov.window_total += 1;
            }
        }
        self.maybe_split()
    }

    /// Checks the split triggers and performs at most one split. Splits
    /// consume no RNG, no billing, and no virtual time — they are free
    /// background reorganisations, which is what keeps converged store
    /// state byte-identical with splitting on or off.
    pub fn maybe_split(&self) -> Option<SplitEvent> {
        let policy = self.policy?;
        let candidate = {
            let st = self.state.read();
            if st.shards.len() >= policy.max_shards {
                return None;
            }
            let gov = self.gov.lock();
            pick_candidate(&st.shards, &gov, &policy)
        }?;
        self.split_shard(candidate)
    }

    /// Test/bench hook: splits the shard currently holding the most
    /// cells, regardless of policy. Returns `None` when nothing can
    /// split (fewer than two distinct ring positions everywhere, or the
    /// map is at [`MAX_SHARDS`]).
    pub fn force_split(&self) -> Option<SplitEvent> {
        let id = {
            let st = self.state.read();
            if st.shards.len() >= MAX_SHARDS {
                return None;
            }
            st.shards
                .iter()
                .map(|s| (s.cells.lock().cell_count(), s.id))
                .max()
                .map(|(_, id)| id)?
        };
        self.split_shard(id)
    }

    /// Splits shard `id` at the median occupied ring position: the lower
    /// half keeps `id`, the upper half becomes a fresh shard recording
    /// `id` as its parent. A shard whose cells sit on fewer than two
    /// distinct ring positions cannot split; its window resets as
    /// backoff so the trigger re-arms only after fresh load.
    fn split_shard(&self, id: u32) -> Option<SplitEvent> {
        let mut st = self.state.write();
        let pos = st.shards.iter().position(|s| s.id == id)?;
        let split = {
            let mut cells = st.shards[pos].cells.lock();
            let mut positions: Vec<u64> = cells.cell_keys().map(|k| ring_position(k)).collect();
            positions.sort_unstable();
            positions.dedup();
            if positions.len() < 2 {
                None
            } else {
                // Deduped and ascending, so the median is strictly above
                // the range start for len >= 2.
                let mid = positions[positions.len() / 2];
                let moved = cells.split_off_by(|k| ring_position(k) >= mid);
                Some((mid, moved))
            }
        };
        let mut gov = self.gov.lock();
        let window = gov.window_ops.remove(&id).unwrap_or(0);
        gov.window_total = gov.window_total.saturating_sub(window);
        gov.rejects.remove(&id);
        let (mid, moved) = split?;
        let moved_cells = moved.cell_count();
        let child_id = st.next_id;
        st.next_id += 1;
        st.shards.insert(
            pos + 1,
            ShardState {
                id: child_id,
                start: mid,
                parent: Some(id),
                cells: Mutex::new(moved),
            },
        );
        // The child inherits a copy of the parent's bucket — same config,
        // same fill — so admission capacity over the hot range doubles
        // from here on, with no retroactive burst.
        if let Some(bucket) = gov.buckets.get(&id).copied() {
            gov.buckets.insert(child_id, bucket);
        }
        gov.splits += 1;
        Some(SplitEvent {
            parent: id,
            child: child_id,
            at: mid,
            moved_cells,
        })
    }
}

fn pick_candidate<V>(
    shards: &[ShardState<V>],
    gov: &GovState,
    policy: &SplitPolicy,
) -> Option<u32> {
    // Rejection trigger first: it is the sharper signal (the bucket is
    // already turning work away).
    if policy.max_rejects > 0 {
        let worst = shards
            .iter()
            .filter_map(|s| gov.rejects.get(&s.id).map(|r| (*r, s.id)))
            .filter(|(r, _)| *r >= policy.max_rejects)
            .max();
        if let Some((_, id)) = worst {
            return Some(id);
        }
    }
    if policy.max_share <= 1.0 && gov.window_total >= policy.min_ops.max(1) {
        let hottest = shards
            .iter()
            .filter_map(|s| gov.window_ops.get(&s.id).map(|o| (*o, s.id)))
            .max();
        if let Some((ops, id)) = hottest {
            if ops >= 2 && ops as f64 > policy.max_share * gov.window_total as f64 {
                return Some(id);
            }
        }
    }
    None
}

/// Accessor over the shards a [`ShardMap::with_cells_multi`] call
/// locked, keyed by stable shard id.
pub struct ShardCells<'a, V> {
    guards: BTreeMap<u32, MutexGuard<'a, EcMap<String, V>>>,
}

impl<V> fmt::Debug for ShardCells<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardCells")
            .field("ids", &self.guards.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl<V> ShardCells<'_, V> {
    /// The cell map locked for shard `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not in the locked set.
    pub fn get_mut(&mut self, id: u32) -> &mut EcMap<String, V> {
        self.guards.get_mut(&id).expect("shard id not locked")
    }
}

/// A consistent snapshot of a map's range layout, for fan-out scans and
/// pagination (see [`ShardMap::read_view`]). Positions index shards in
/// ascending range order.
pub struct MapView<'a, V> {
    state: &'a MapState<V>,
}

impl<V> fmt::Debug for MapView<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapView")
            .field("shards", &self.state.shards.len())
            .finish()
    }
}

impl<V: Clone> MapView<'_, V> {
    /// Shards in this view.
    pub fn shard_count(&self) -> usize {
        self.state.shards.len()
    }

    /// Stable id of the shard at range `position`.
    pub fn id_at(&self, position: usize) -> u32 {
        self.state.shards[position].id
    }

    /// Stable ids in ascending **id** order (the deterministic order
    /// replica draws are assigned in).
    pub fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.state.shards.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Runs `f` against the cell map at range `position`.
    pub fn with_cells_at<R>(&self, position: usize, f: impl FnOnce(&EcMap<String, V>) -> R) -> R {
        let cells = self.state.shards[position].cells.lock();
        f(&cells)
    }

    /// Pins one read replica per current shard: `n` draws from the
    /// world, assigned in ascending-id order — which on a fresh
    /// power-of-two layout reproduces the historical draw-per-index
    /// assignment exactly.
    pub fn pin_replicas(&self, world: &SimWorld) -> ReplicaPin {
        let draws = world.sample_read_replicas(self.state.shards.len());
        let mut pin = ReplicaPin::new();
        for (id, replica) in self.sorted_ids().into_iter().zip(draws) {
            pin.insert(id, replica);
        }
        pin
    }

    /// Resolves the pinned replica for the shard at range `position`,
    /// walking parent pointers for shards born after the pin was taken.
    /// `None` means the pin cannot cover this shard — a token from a
    /// different layout.
    pub fn resolve_pin(&self, pin: &ReplicaPin, position: usize) -> Option<usize> {
        let mut shard = &self.state.shards[position];
        loop {
            if let Some(replica) = pin.get(shard.id) {
                return Some(replica);
            }
            let parent = shard.parent?;
            shard = self.state.shards.iter().find(|s| s.id == parent)?;
        }
    }

    /// `true` when every pinned id names a shard in this view. Ids never
    /// disappear (shards split, never merge), so an unknown id marks a
    /// token minted against some other map.
    pub fn pin_ids_known(&self, pin: &ReplicaPin) -> bool {
        pin.iter()
            .all(|(id, _)| self.state.shards.iter().any(|s| s.id == id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::SimWorld;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("key-{i:05}")).collect()
    }

    #[test]
    fn clamp_rule_is_shared() {
        assert_eq!(clamp_shards(0), 1);
        assert_eq!(clamp_shards(1), 1);
        assert_eq!(clamp_shards(16), 16);
        assert_eq!(clamp_shards(10_000), MAX_SHARDS);
    }

    #[test]
    fn power_of_two_layouts_reproduce_modulo_placement() {
        // The whole point of the bit-reversed ring: a fresh 2^k layout
        // routes every key to the stable id `fnv1a_64(key) % n`.
        for n in [1usize, 2, 4, 8, 16, 64] {
            let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(n));
            for k in keys(200) {
                let expect = (fnv1a_64(&k) % n as u64) as u32;
                assert_eq!(map.route(&k), expect, "key {k} in {n} shards");
            }
        }
    }

    #[test]
    fn non_power_of_two_layouts_cover_the_ring() {
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(5));
        assert_eq!(map.shard_count(), 5);
        let mut seen = std::collections::BTreeSet::new();
        for k in keys(500) {
            seen.insert(map.route(&k));
        }
        assert_eq!(seen.len(), 5, "500 keys should touch all 5 shards");
    }

    #[test]
    fn split_moves_only_the_parents_cells() {
        let world = SimWorld::counting();
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(4));
        let all = keys(400);
        for (i, k) in all.iter().enumerate() {
            map.with_cells(k, |_, cells| cells.write(&world, k.clone(), Some(i as u32)));
        }
        let before: Vec<(String, u32)> = all.iter().map(|k| (k.clone(), map.route(k))).collect();
        let ev = map
            .force_split()
            .expect("400 keys over 4 shards must split");
        assert_eq!(map.shard_count(), 5);
        // Keys outside the split shard keep their routes; keys inside
        // stay in the parent or move to the child, nothing else.
        for (k, old) in before {
            let new = map.route(&k);
            if old == ev.parent {
                assert!(
                    new == ev.parent || new == ev.child,
                    "key {k} left the split range: {old} -> {new}"
                );
            } else {
                assert_eq!(new, old, "key {k} re-routed by an unrelated split");
            }
            // Values survive wherever they landed.
            let got = map.with_cells(&k, |_, cells| cells.read_latest(&k));
            assert!(got.is_some(), "key {k} lost by the split");
        }
        assert!(ev.moved_cells > 0, "median split must move something");
    }

    #[test]
    fn share_trigger_splits_the_hot_shard() {
        let world = SimWorld::counting();
        let policy = SplitPolicy::by_share(0.3).with_min_ops(64);
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(4).with_split(policy));
        // Two hot keys on one shard; everything else cold.
        let hot = "hot-key-a";
        let hot_id = map.route(hot);
        let mut sibling = None;
        for k in keys(4000) {
            if map.route(&k) == hot_id && ring_position(&k) != ring_position(hot) {
                sibling = Some(k);
                break;
            }
        }
        let sibling = sibling.expect("some key shares the hot shard");
        map.with_cells(hot, |_, c| c.write(&world, hot.to_string(), Some(1)));
        map.with_cells(&sibling, |_, c| c.write(&world, sibling.clone(), Some(2)));
        let mut split = None;
        for _ in 0..200 {
            let id = map.route(hot);
            if let Some(ev) = map.note_ops(&[id]) {
                split = Some(ev);
                break;
            }
        }
        let ev = split.expect("hot shard should split");
        assert_eq!(ev.parent, hot_id);
        assert_eq!(map.shard_count(), 5);
        assert_eq!(map.split_count(), 1);
    }

    #[test]
    fn rejection_trigger_splits_and_doubles_admission() {
        use crate::clock::SimInstant;
        let world = SimWorld::counting();
        let policy = SplitPolicy::by_rejections(3);
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(2).with_split(policy));
        // Give the target shard two distinct ring positions so it can
        // split.
        let ks = keys(64);
        for k in &ks {
            map.with_cells(k, |_, c| c.write(&world, k.clone(), Some(0)));
        }
        let cfg = Some(ThrottleConfig::per_shard(1.0));
        let now = SimInstant::EPOCH;
        let id = map.route(&ks[0]);
        // Burn the bucket, then keep knocking: after 3 rejections the
        // shard splits.
        assert!(map.admit(now, cfg, &[id]));
        for _ in 0..3 {
            assert!(!map.admit(now, cfg, &[id]));
        }
        let ev = map.maybe_split().expect("rejections should force a split");
        assert_eq!(ev.parent, id);
        assert_eq!(map.shard_count(), 3);
        // The child cloned the parent's (empty) bucket: both halves now
        // refill independently, doubling capacity over the old range.
        let later = now + crate::clock::SimDuration::from_secs(2);
        assert!(map.admit(later, cfg, &[ev.parent]));
        assert!(map.admit(later, cfg, &[ev.child]));
    }

    #[test]
    fn pins_resolve_through_parent_chains() {
        let world = SimWorld::counting();
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(2));
        for k in keys(128) {
            map.with_cells(&k, |_, c| c.write(&world, k.clone(), Some(9)));
        }
        let pin = map.read_view(|v| v.pin_replicas(&world));
        assert_eq!(pin.len(), 2);
        map.force_split().expect("split 1");
        map.force_split().expect("split 2");
        map.read_view(|v| {
            assert_eq!(v.shard_count(), 4);
            assert!(v.pin_ids_known(&pin));
            for pos in 0..v.shard_count() {
                assert!(
                    v.resolve_pin(&pin, pos).is_some(),
                    "shard at {pos} must resolve through its ancestors"
                );
            }
        });
        // A pin naming a foreign id is detectable.
        let mut bogus = ReplicaPin::new();
        bogus.insert(99, 0);
        map.read_view(|v| assert!(!v.pin_ids_known(&bogus)));
    }

    #[test]
    fn unsplittable_shard_backs_off() {
        let world = SimWorld::counting();
        let policy = SplitPolicy::by_share(0.1).with_min_ops(4);
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(1).with_split(policy));
        // One single key: one ring position, nothing to split.
        map.with_cells("only", |_, c| c.write(&world, "only".to_string(), Some(1)));
        let id = map.route("only");
        for _ in 0..64 {
            assert!(map.note_ops(&[id]).is_none());
        }
        assert_eq!(map.shard_count(), 1);
        assert_eq!(map.split_count(), 0);
    }

    #[test]
    fn growth_stops_at_the_policy_cap() {
        let world = SimWorld::counting();
        let policy = SplitPolicy::by_share(0.0)
            .with_min_ops(1)
            .with_max_shards(4);
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(2).with_split(policy));
        for k in keys(256) {
            map.with_cells(&k, |_, c| c.write(&world, k.clone(), Some(0)));
        }
        for k in keys(256) {
            let id = map.route(&k);
            map.note_ops(&[id]);
        }
        assert_eq!(map.shard_count(), 4, "cap must hold");
    }

    #[test]
    fn batch_locking_is_id_ordered_and_reaches_every_shard() {
        let world = SimWorld::counting();
        let map: ShardMap<u32> = ShardMap::new(ShardPlan::fixed(8));
        let ks = keys(32);
        let ids = map.route_all(&ks);
        map.with_cells_multi(&ids, |cells| {
            for (k, id) in ks.iter().zip(&ids) {
                cells.get_mut(*id).write(&world, k.clone(), Some(5));
            }
        });
        for k in &ks {
            let got = map.with_cells(k, |_, c| c.read_latest(k));
            assert_eq!(got, Some(5));
        }
    }
}

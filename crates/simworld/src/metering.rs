//! Operation and transfer metering.
//!
//! Amazon bills by the number of operations, the bytes moved in and out,
//! and the bytes stored — so the paper compares its three architectures on
//! exactly those axes (Tables 2 and 3). Every simulated service reports
//! each API call here, and the analysis harness reads the counters back
//! out as [`MeterSnapshot`]s that can be subtracted to isolate a phase.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Sub;

use serde::{Deserialize, Serialize};

/// The simulated AWS service an operation ran against.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Service {
    /// Simple Storage Service.
    S3,
    /// SimpleDB.
    SimpleDb,
    /// Simple Queueing Service.
    Sqs,
}

impl Service {
    /// All services, in display order.
    pub const ALL: [Service; 3] = [Service::S3, Service::SimpleDb, Service::Sqs];
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Service::S3 => "S3",
            Service::SimpleDb => "SimpleDB",
            Service::Sqs => "SQS",
        })
    }
}

/// A billable API call, tagged by service.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Op {
    /// S3 `PUT Object` (stores data plus up to 2 KB of metadata).
    S3Put,
    /// S3 `GET Object`, whole or ranged.
    S3Get,
    /// S3 `HEAD Object` (metadata only).
    S3Head,
    /// S3 `PUT Object - Copy`.
    S3Copy,
    /// S3 `DELETE Object`.
    S3Delete,
    /// S3 multi-object delete (`POST ?delete`, ≤ 1,000 keys per
    /// request): one billable request however many keys it carries.
    S3DeleteObjects,
    /// S3 `GET Bucket` (list objects).
    S3List,
    /// SimpleDB `PutAttributes` (≤ 100 attributes per call).
    SdbPutAttributes,
    /// SimpleDB `BatchPutAttributes` (≤ 25 items per call): one billable
    /// request however many items it carries.
    SdbBatchPutAttributes,
    /// SimpleDB `BatchDeleteAttributes` (≤ 25 items per call).
    SdbBatchDeleteAttributes,
    /// SimpleDB `GetAttributes`.
    SdbGetAttributes,
    /// SimpleDB `DeleteAttributes`.
    SdbDeleteAttributes,
    /// SimpleDB `Query` (item names only).
    SdbQuery,
    /// SimpleDB `QueryWithAttributes`.
    SdbQueryWithAttributes,
    /// SimpleDB `Select` (SQL-form query).
    SdbSelect,
    /// SimpleDB `CreateDomain`.
    SdbCreateDomain,
    /// SimpleDB `ListDomains`.
    SdbListDomains,
    /// SQS `CreateQueue`.
    SqsCreateQueue,
    /// SQS `SendMessage` (≤ 8 KB body).
    SqsSendMessage,
    /// SQS `SendMessageBatch` (≤ 10 entries per call): one billable
    /// request however many entries it carries.
    SqsSendMessageBatch,
    /// SQS `DeleteMessageBatch` (≤ 10 receipt handles per call).
    SqsDeleteMessageBatch,
    /// SQS `ReceiveMessage` (≤ 10 messages, sampled).
    SqsReceiveMessage,
    /// SQS `DeleteMessage` (by receipt handle).
    SqsDeleteMessage,
    /// SQS `GetQueueAttributes` (e.g. `ApproximateNumberOfMessages`).
    SqsGetQueueAttributes,
}

impl Op {
    /// Which service bills this op.
    pub fn service(self) -> Service {
        use Op::*;
        match self {
            S3Put | S3Get | S3Head | S3Copy | S3Delete | S3DeleteObjects | S3List => Service::S3,
            SdbPutAttributes
            | SdbBatchPutAttributes
            | SdbBatchDeleteAttributes
            | SdbGetAttributes
            | SdbDeleteAttributes
            | SdbQuery
            | SdbQueryWithAttributes
            | SdbSelect
            | SdbCreateDomain
            | SdbListDomains => Service::SimpleDb,
            SqsCreateQueue
            | SqsSendMessage
            | SqsSendMessageBatch
            | SqsReceiveMessage
            | SqsDeleteMessage
            | SqsDeleteMessageBatch
            | SqsGetQueueAttributes => Service::Sqs,
        }
    }

    /// `true` for the ops S3 bills at the PUT/COPY/POST/LIST rate
    /// (USD 0.01 per 1,000); the rest of the S3 ops bill at the GET rate
    /// (USD 0.01 per 10,000). Multi-object delete is a POST, so it lands
    /// in the put class — one put-class request per 1,000 keys still
    /// undercuts 1,000 get-class singles by 10x.
    pub fn is_s3_put_class(self) -> bool {
        matches!(
            self,
            Op::S3Put | Op::S3Copy | Op::S3List | Op::S3DeleteObjects
        )
    }

    /// `true` for the batch ops: one billable request carrying many
    /// entries (the entry counts live in
    /// [`ServiceMeter::batch_entries`]).
    pub fn is_batch(self) -> bool {
        matches!(
            self,
            Op::S3DeleteObjects
                | Op::SdbBatchPutAttributes
                | Op::SdbBatchDeleteAttributes
                | Op::SqsSendMessageBatch
                | Op::SqsDeleteMessageBatch
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Totals for one service.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ServiceMeter {
    /// Count per op kind.
    pub ops: BTreeMap<Op, u64>,
    /// Bytes transferred into the service (request payloads).
    pub bytes_in: u64,
    /// Bytes transferred out of the service (response payloads).
    pub bytes_out: u64,
    /// Bytes currently stored (gauge, not a counter).
    pub stored_bytes: u64,
    /// How many operations touched each storage shard of the service
    /// (sharded backends only; single-shard ops land on shard 0). A
    /// point read/write touches one shard; a fan-out query touches all
    /// of them — the skew of this map is the load-balance picture.
    pub shard_ops: BTreeMap<u32, u64>,
    /// Total entries carried by batch requests, per batch op kind. A
    /// batch increments `ops` once (one billable request) and this map
    /// by its entry count, so `batch_entries / ops` is the realised
    /// batch fill — the number the paper's round-trip argument turns on.
    pub batch_entries: BTreeMap<Op, u64>,
    /// Requests the provider rejected with a 503 (`ServiceUnavailable`).
    /// Each rejection is *also* counted in [`ServiceMeter::ops`] — AWS
    /// bills throttled requests — so this counter isolates how many of
    /// the billed requests did no useful work.
    #[serde(default)]
    pub throttled: u64,
}

impl ServiceMeter {
    /// Total operation count across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.values().sum()
    }

    /// Count for one op kind.
    pub fn op_count(&self, op: Op) -> u64 {
        self.ops.get(&op).copied().unwrap_or(0)
    }

    /// Operations that touched one shard.
    pub fn shard_op_count(&self, shard: u32) -> u64 {
        self.shard_ops.get(&shard).copied().unwrap_or(0)
    }

    /// Entries shipped through one batch op kind.
    pub fn batch_entry_count(&self, op: Op) -> u64 {
        self.batch_entries.get(&op).copied().unwrap_or(0)
    }

    /// Reduces [`ServiceMeter::shard_ops`] to the load-balance summary
    /// the skew tables print. `baseline_shards` is the denominator for
    /// the mean — the provisioned (static) layout — so a run whose
    /// splitting grew the live shard count is still measured against the
    /// static fair share.
    pub fn shard_imbalance(&self, baseline_shards: usize) -> ShardImbalance {
        let total_ops: u64 = self.shard_ops.values().sum();
        let (max_ops, max_shard) = self
            .shard_ops
            .iter()
            .map(|(shard, n)| (*n, *shard))
            .max()
            .map(|(n, shard)| (n, Some(shard)))
            .unwrap_or((0, None));
        ShardImbalance {
            baseline_shards: baseline_shards.max(1),
            shards_touched: self.shard_ops.len(),
            total_ops,
            max_ops,
            max_shard,
        }
    }
}

/// Shard load-balance summary for one service: the reusable reducer
/// behind every skew table (max/mean shard-op imbalance plus the
/// hottest shard's share), so the benches stop recomputing it ad hoc.
///
/// # Examples
///
/// ```
/// use simworld::{MeterBook, Service};
///
/// let mut book = MeterBook::new();
/// book.record_shard_touch(Service::SimpleDb, 0);
/// book.record_shard_touch(Service::SimpleDb, 0);
/// book.record_shard_touch(Service::SimpleDb, 1);
/// book.record_shard_touch(Service::SimpleDb, 3);
/// let skew = book.snapshot().shard_imbalance(Service::SimpleDb, 4);
/// assert_eq!(skew.total_ops, 4);
/// assert_eq!(skew.max_ops, 2);
/// assert_eq!(skew.imbalance(), 2.0); // 2 / (4/4)
/// assert_eq!(skew.max_share(), 0.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardImbalance {
    /// Denominator shard count (at least 1): the provisioned layout,
    /// even when splitting has grown the live count past it.
    pub baseline_shards: usize,
    /// Distinct shard ids that recorded at least one op.
    pub shards_touched: usize,
    /// Shard touches summed over all ids.
    pub total_ops: u64,
    /// Touches on the busiest shard.
    pub max_ops: u64,
    /// Stable id of the busiest shard (`None` when nothing recorded).
    pub max_shard: Option<u32>,
}

impl ShardImbalance {
    /// Mean ops per baseline shard (the static fair share).
    pub fn mean_ops(&self) -> f64 {
        self.total_ops as f64 / self.baseline_shards as f64
    }

    /// Max/mean imbalance (`0.0` when nothing was recorded). `1.0` is a
    /// perfectly balanced layout.
    pub fn imbalance(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.max_ops as f64 / self.mean_ops()
        }
    }

    /// The busiest shard's share of all touches (`0.0` when nothing was
    /// recorded).
    pub fn max_share(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.max_ops as f64 / self.total_ops as f64
        }
    }
}

/// The ledger for the whole simulated cloud.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MeterBook {
    s3: ServiceMeter,
    simpledb: ServiceMeter,
    sqs: ServiceMeter,
}

impl MeterBook {
    /// Creates an empty ledger.
    pub fn new() -> MeterBook {
        MeterBook::default()
    }

    /// Records one API call.
    pub fn record(&mut self, op: Op, bytes_in: u64, bytes_out: u64) {
        let meter = self.service_mut(op.service());
        *meter.ops.entry(op).or_insert(0) += 1;
        meter.bytes_in += bytes_in;
        meter.bytes_out += bytes_out;
    }

    /// Records one batch API call: a single billable request (op count,
    /// transfer bytes) plus the number of entries it carried.
    pub fn record_batch(&mut self, op: Op, entries: u64, bytes_in: u64, bytes_out: u64) {
        self.record(op, bytes_in, bytes_out);
        *self
            .service_mut(op.service())
            .batch_entries
            .entry(op)
            .or_insert(0) += entries;
    }

    /// Records a request the provider rejected with a 503: one billable
    /// op (AWS charges for throttled requests, request bytes included)
    /// plus a bump of the service's [`ServiceMeter::throttled`] counter.
    pub fn record_throttled(&mut self, op: Op, bytes_in: u64) {
        self.record(op, bytes_in, 0);
        self.service_mut(op.service()).throttled += 1;
    }

    /// Records that an operation touched `shard` of `service`'s storage.
    /// Point ops report their single shard; fan-out queries report every
    /// shard they read.
    pub fn record_shard_touch(&mut self, service: Service, shard: u32) {
        *self
            .service_mut(service)
            .shard_ops
            .entry(shard)
            .or_insert(0) += 1;
    }

    /// Adjusts the stored-bytes gauge for `service` by `delta`.
    pub fn adjust_stored(&mut self, service: Service, delta: i64) {
        let meter = self.service_mut(service);
        meter.stored_bytes = meter
            .stored_bytes
            .checked_add_signed(delta)
            .expect("stored-bytes gauge must never go negative");
    }

    /// Read-only view of one service's totals.
    pub fn service(&self, service: Service) -> &ServiceMeter {
        match service {
            Service::S3 => &self.s3,
            Service::SimpleDb => &self.simpledb,
            Service::Sqs => &self.sqs,
        }
    }

    fn service_mut(&mut self, service: Service) -> &mut ServiceMeter {
        match service {
            Service::S3 => &mut self.s3,
            Service::SimpleDb => &mut self.simpledb,
            Service::Sqs => &mut self.sqs,
        }
    }

    /// A copyable snapshot of the ledger.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot { book: self.clone() }
    }
}

/// A point-in-time copy of the ledger; snapshots subtract to isolate a
/// phase of an experiment.
///
/// # Examples
///
/// ```
/// use simworld::{MeterBook, MeterSnapshot, Op};
///
/// let mut book = MeterBook::new();
/// let before = book.snapshot();
/// book.record(Op::S3Put, 100, 0);
/// let after = book.snapshot();
/// let phase = after - before;
/// assert_eq!(phase.op_count(Op::S3Put), 1);
/// assert_eq!(phase.bytes_in(), 100);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MeterSnapshot {
    book: MeterBook,
}

impl MeterSnapshot {
    /// Total ops across all services.
    pub fn total_ops(&self) -> u64 {
        Service::ALL
            .iter()
            .map(|s| self.book.service(*s).total_ops())
            .sum()
    }

    /// Ops for one service.
    pub fn service_ops(&self, service: Service) -> u64 {
        self.book.service(service).total_ops()
    }

    /// Count of one op kind.
    pub fn op_count(&self, op: Op) -> u64 {
        self.book.service(op.service()).op_count(op)
    }

    /// Bytes in across all services.
    pub fn bytes_in(&self) -> u64 {
        Service::ALL
            .iter()
            .map(|s| self.book.service(*s).bytes_in)
            .sum()
    }

    /// Bytes out across all services.
    pub fn bytes_out(&self) -> u64 {
        Service::ALL
            .iter()
            .map(|s| self.book.service(*s).bytes_out)
            .sum()
    }

    /// Bytes currently stored on one service.
    pub fn stored_bytes(&self, service: Service) -> u64 {
        self.book.service(service).stored_bytes
    }

    /// Bytes stored across all services.
    pub fn total_stored_bytes(&self) -> u64 {
        Service::ALL
            .iter()
            .map(|s| self.book.service(*s).stored_bytes)
            .sum()
    }

    /// Per-service view.
    pub fn service(&self, service: Service) -> &ServiceMeter {
        self.book.service(service)
    }

    /// Operations that touched one storage shard of `service`.
    pub fn shard_op_count(&self, service: Service, shard: u32) -> u64 {
        self.book.service(service).shard_op_count(shard)
    }

    /// Load-balance summary of `service`'s shard touches against a
    /// `baseline_shards`-wide fair share (see [`ShardImbalance`]).
    pub fn shard_imbalance(&self, service: Service, baseline_shards: usize) -> ShardImbalance {
        self.book.service(service).shard_imbalance(baseline_shards)
    }

    /// Entries shipped through one batch op kind.
    pub fn batch_entry_count(&self, op: Op) -> u64 {
        self.book.service(op.service()).batch_entry_count(op)
    }

    /// Requests one service rejected with a 503.
    pub fn throttled(&self, service: Service) -> u64 {
        self.book.service(service).throttled
    }

    /// 503 rejections across all services.
    pub fn total_throttled(&self) -> u64 {
        Service::ALL
            .iter()
            .map(|s| self.book.service(*s).throttled)
            .sum()
    }

    /// Iterates `(op, count)` over every nonzero counter.
    pub fn iter_ops(&self) -> impl Iterator<Item = (Op, u64)> + '_ {
        Service::ALL
            .iter()
            .flat_map(move |s| self.book.service(*s).ops.iter().map(|(op, n)| (*op, *n)))
    }
}

impl Sub for MeterSnapshot {
    type Output = MeterSnapshot;

    /// Difference of two snapshots: op counters and transfer counters
    /// subtract (saturating); the stored-bytes gauge keeps the newer value.
    fn sub(self, earlier: MeterSnapshot) -> MeterSnapshot {
        let mut out = self.clone();
        for service in Service::ALL {
            let now = self.book.service(service);
            let then = earlier.book.service(service);
            let meter = out.book.service_mut(service);
            meter.bytes_in = now.bytes_in.saturating_sub(then.bytes_in);
            meter.bytes_out = now.bytes_out.saturating_sub(then.bytes_out);
            meter.stored_bytes = now.stored_bytes;
            meter.throttled = now.throttled.saturating_sub(then.throttled);
            meter.ops = now
                .ops
                .iter()
                .map(|(op, n)| (*op, n.saturating_sub(then.op_count(*op))))
                .filter(|(_, n)| *n > 0)
                .collect();
            meter.shard_ops = now
                .shard_ops
                .iter()
                .map(|(shard, n)| (*shard, n.saturating_sub(then.shard_op_count(*shard))))
                .filter(|(_, n)| *n > 0)
                .collect();
            meter.batch_entries = now
                .batch_entries
                .iter()
                .map(|(op, n)| (*op, n.saturating_sub(then.batch_entry_count(*op))))
                .filter(|(_, n)| *n > 0)
                .collect();
        }
        out
    }
}

/// Pretty-prints byte counts the way the paper does (`121.8MB`, `1.27GB`).
pub fn format_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_service() {
        let mut book = MeterBook::new();
        book.record(Op::S3Put, 10, 0);
        book.record(Op::S3Put, 20, 0);
        book.record(Op::SqsSendMessage, 5, 0);
        assert_eq!(book.service(Service::S3).op_count(Op::S3Put), 2);
        assert_eq!(book.service(Service::S3).bytes_in, 30);
        assert_eq!(book.service(Service::Sqs).bytes_in, 5);
        assert_eq!(book.service(Service::SimpleDb).total_ops(), 0);
    }

    #[test]
    fn snapshot_subtraction_isolates_phase() {
        let mut book = MeterBook::new();
        book.record(Op::S3Put, 100, 0);
        let mid = book.snapshot();
        book.record(Op::S3Put, 50, 0);
        book.record(Op::S3Get, 0, 75);
        let end = book.snapshot();
        let phase = end - mid;
        assert_eq!(phase.op_count(Op::S3Put), 1);
        assert_eq!(phase.op_count(Op::S3Get), 1);
        assert_eq!(phase.bytes_in(), 50);
        assert_eq!(phase.bytes_out(), 75);
    }

    #[test]
    fn stored_gauge_tracks_deltas() {
        let mut book = MeterBook::new();
        book.adjust_stored(Service::S3, 1000);
        book.adjust_stored(Service::S3, -400);
        assert_eq!(book.snapshot().stored_bytes(Service::S3), 600);
    }

    #[test]
    #[should_panic(expected = "never go negative")]
    fn stored_gauge_underflow_panics() {
        let mut book = MeterBook::new();
        book.adjust_stored(Service::Sqs, -1);
    }

    #[test]
    fn op_service_mapping_is_total() {
        // Every op maps to the service its name implies.
        assert_eq!(Op::S3Copy.service(), Service::S3);
        assert_eq!(Op::SdbSelect.service(), Service::SimpleDb);
        assert_eq!(Op::SqsReceiveMessage.service(), Service::Sqs);
    }

    #[test]
    fn s3_put_class_matches_price_book() {
        assert!(Op::S3Put.is_s3_put_class());
        assert!(Op::S3Copy.is_s3_put_class());
        assert!(Op::S3List.is_s3_put_class());
        assert!(!Op::S3Get.is_s3_put_class());
        assert!(!Op::S3Head.is_s3_put_class());
        assert!(!Op::S3Delete.is_s3_put_class());
    }

    #[test]
    fn format_bytes_matches_paper_style() {
        assert_eq!(format_bytes(500), "500B");
        assert_eq!(format_bytes(2 * 1024), "2.0KB");
        assert_eq!(format_bytes((121.8 * 1024.0 * 1024.0) as u64), "121.8MB");
        assert_eq!(
            format_bytes((1.27 * 1024.0 * 1024.0 * 1024.0) as u64),
            "1.27GB"
        );
    }

    #[test]
    fn shard_touches_accumulate_and_subtract() {
        let mut book = MeterBook::new();
        book.record_shard_touch(Service::SimpleDb, 0);
        book.record_shard_touch(Service::SimpleDb, 3);
        book.record_shard_touch(Service::SimpleDb, 3);
        let mid = book.snapshot();
        assert_eq!(mid.shard_op_count(Service::SimpleDb, 3), 2);
        assert_eq!(mid.shard_op_count(Service::SimpleDb, 1), 0);
        assert_eq!(mid.shard_op_count(Service::S3, 0), 0);
        book.record_shard_touch(Service::SimpleDb, 3);
        let phase = book.snapshot() - mid;
        assert_eq!(phase.shard_op_count(Service::SimpleDb, 3), 1);
        assert_eq!(phase.shard_op_count(Service::SimpleDb, 0), 0);
    }

    #[test]
    fn batch_records_one_op_many_entries() {
        let mut book = MeterBook::new();
        book.record_batch(Op::SqsSendMessageBatch, 10, 4096, 0);
        book.record_batch(Op::SqsSendMessageBatch, 7, 2048, 0);
        let snap = book.snapshot();
        assert_eq!(snap.op_count(Op::SqsSendMessageBatch), 2);
        assert_eq!(snap.batch_entry_count(Op::SqsSendMessageBatch), 17);
        assert_eq!(snap.bytes_in(), 6144);
        assert_eq!(snap.batch_entry_count(Op::S3DeleteObjects), 0);
    }

    #[test]
    fn batch_entries_subtract_per_phase() {
        let mut book = MeterBook::new();
        book.record_batch(Op::SdbBatchPutAttributes, 25, 0, 0);
        let mid = book.snapshot();
        book.record_batch(Op::SdbBatchPutAttributes, 5, 0, 0);
        let phase = book.snapshot() - mid;
        assert_eq!(phase.op_count(Op::SdbBatchPutAttributes), 1);
        assert_eq!(phase.batch_entry_count(Op::SdbBatchPutAttributes), 5);
    }

    #[test]
    fn batch_op_classification() {
        assert!(Op::S3DeleteObjects.is_batch());
        assert!(Op::SdbBatchPutAttributes.is_batch());
        assert!(Op::SdbBatchDeleteAttributes.is_batch());
        assert!(Op::SqsSendMessageBatch.is_batch());
        assert!(Op::SqsDeleteMessageBatch.is_batch());
        assert!(!Op::S3Delete.is_batch());
        assert!(!Op::SqsSendMessage.is_batch());
        // Multi-object delete is a POST: put class.
        assert!(Op::S3DeleteObjects.is_s3_put_class());
        assert_eq!(Op::S3DeleteObjects.service(), Service::S3);
        assert_eq!(Op::SdbBatchPutAttributes.service(), Service::SimpleDb);
        assert_eq!(Op::SqsDeleteMessageBatch.service(), Service::Sqs);
    }

    #[test]
    fn throttled_rejections_are_billed_and_counted() {
        let mut book = MeterBook::new();
        book.record(Op::SdbPutAttributes, 100, 0);
        book.record_throttled(Op::SdbPutAttributes, 100);
        let snap = book.snapshot();
        // The rejection is a billable request with its payload bytes…
        assert_eq!(snap.op_count(Op::SdbPutAttributes), 2);
        assert_eq!(snap.bytes_in(), 200);
        // …and is separately countable as useless work.
        assert_eq!(snap.throttled(Service::SimpleDb), 1);
        assert_eq!(snap.throttled(Service::S3), 0);
        assert_eq!(snap.total_throttled(), 1);
    }

    #[test]
    fn throttled_counts_subtract_per_phase() {
        let mut book = MeterBook::new();
        book.record_throttled(Op::S3Put, 10);
        let mid = book.snapshot();
        book.record_throttled(Op::S3Put, 10);
        book.record_throttled(Op::SqsSendMessage, 5);
        let phase = book.snapshot() - mid;
        assert_eq!(phase.throttled(Service::S3), 1);
        assert_eq!(phase.throttled(Service::Sqs), 1);
        assert_eq!(phase.total_throttled(), 2);
    }

    #[test]
    fn iter_ops_lists_nonzero_counters() {
        let mut book = MeterBook::new();
        book.record(Op::SdbQuery, 0, 10);
        book.record(Op::SdbQuery, 0, 10);
        let snap = book.snapshot();
        let collected: Vec<_> = snap.iter_ops().collect();
        assert_eq!(collected, vec![(Op::SdbQuery, 2)]);
    }
}

//! The shared simulation context.
//!
//! A [`SimWorld`] bundles the virtual clock, a seeded RNG, the billing
//! meters and the fault plan behind one cheaply-clonable handle. Every
//! simulated AWS service and every client holds a clone, so a whole
//! experiment — clients, daemons, services — advances one logical
//! timeline and reads one ledger, deterministically for a given seed.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::{SimDuration, SimInstant};
use crate::faults::{CrashSite, Crashed, FaultPlan};
use crate::latency::LatencyModel;
use crate::metering::{MeterBook, MeterSnapshot, Op, Service};
use crate::samples::{LatencySample, SampleLog};
use crate::sched::{FiredEvent, SchedEvent, Scheduler, TimerId};

/// The consistency regime the simulated services run under.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Consistency {
    /// Writes are visible everywhere immediately. Useful as a control in
    /// experiments, and for isolating protocol bugs from staleness.
    Strong,
    /// AWS semantics: each write propagates to each replica after an
    /// independent uniform delay in `[0, max_lag]`. A read served by a
    /// replica that has not yet received the newest write returns stale
    /// state.
    Eventual {
        /// Upper bound on per-replica propagation delay.
        max_lag: SimDuration,
    },
}

impl Consistency {
    /// Convenience constructor for the eventual regime.
    pub fn eventual(max_lag: SimDuration) -> Consistency {
        Consistency::Eventual { max_lag }
    }
}

/// Configuration for a [`SimWorld`].
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Consistency regime for every service.
    pub consistency: Consistency,
    /// Request latency model.
    pub latency: LatencyModel,
    /// Replica count per service datastore.
    pub replicas: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            consistency: Consistency::Eventual {
                max_lag: SimDuration::from_millis(500),
            },
            latency: LatencyModel::default(),
            replicas: 3,
        }
    }
}

impl SimConfig {
    /// A config for pure op-count analyses: strong consistency, zero
    /// latency — the clock stands still and nothing is ever stale.
    pub fn counting() -> SimConfig {
        SimConfig {
            seed: 0,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        }
    }
}

/// What an open pipeline did, reported by [`SimWorld::drain_pipeline`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Requests issued while the pipeline was open.
    pub requests: u64,
    /// Times the issuer blocked because every channel of a service was
    /// busy (the `max_in_flight` cap doing its job).
    pub stalls: u64,
    /// [`PipelineStats::stalls`] attributed to the service that caused
    /// each block, indexed S3 / SimpleDB / SQS — the evidence an
    /// adaptive-depth controller reads to find the gating service.
    pub stalls_by_service: [u64; 3],
    /// Largest number of requests simultaneously in flight.
    pub peak_in_flight: usize,
    /// When the last in-flight request completed (the drain instant).
    pub completed_at: SimInstant,
}

impl PipelineStats {
    /// Stalls attributed to `service`.
    pub fn stalls_for(&self, service: Service) -> u64 {
        self.stalls_by_service[service_index(service)]
    }

    /// The service that blocked the issuer most often — the one whose
    /// channel set saturates first — or `None` for a stall-free region.
    pub fn gating_service(&self) -> Option<Service> {
        const SERVICES: [Service; 3] = [Service::S3, Service::SimpleDb, Service::Sqs];
        SERVICES
            .into_iter()
            .max_by_key(|s| self.stalls_by_service[service_index(*s)])
            .filter(|s| self.stalls_by_service[service_index(*s)] > 0)
    }
}

/// Per-service in-flight request sets: each entry is the completion
/// instant of one request still on the wire. A request issued at `t`
/// starts at `max(t, earliest completion when the service is full,
/// same-key predecessor)` and completes `latency` later — the
/// "completion = max(channel-free time, issue time) + sampled latency"
/// rule that replaces the serial sum. Tracking in-flight completions
/// (rather than fixed channel slots) lets the depth limit be resized
/// mid-region without losing accounting — the lever an adaptive
/// controller pulls.
struct PipelineState {
    /// Per-service cap on concurrently in-flight requests.
    depth: usize,
    inflight: [Vec<SimInstant>; 3],
    /// Per-(service, order-key) FIFO constraint: the completion instant
    /// of the last request issued on that key. A later request on the
    /// same key never completes earlier (WAL sends to one queue stay
    /// BEGIN..COMMIT-ordered however deep the pipeline runs).
    keyed: HashMap<(usize, u64), SimInstant>,
    stats: PipelineStats,
}

fn service_index(service: Service) -> usize {
    match service {
        Service::S3 => 0,
        Service::SimpleDb => 1,
        Service::Sqs => 2,
    }
}

struct WorldState {
    now: SimInstant,
    rng: SmallRng,
    meters: MeterBook,
    faults: FaultPlan,
    config: SimConfig,
    sched: Scheduler,
    /// Live timer deadlines, keyed by scheduler seq (cancelled/consumed
    /// timers are removed; their heap entries are cancelled lazily).
    timers: HashMap<u64, SimInstant>,
    pipeline: Option<PipelineState>,
    trace: Option<Vec<FiredEvent>>,
    /// Tenant id stamped onto latency samples (0 outside fleet runs).
    tenant: u64,
    /// Per-request latency sample ring; `None` keeps recording free.
    samples: Option<SampleLog>,
    /// Client-side 503 backoff retries (see `note_throttle_retry`).
    throttle_retries: u64,
}

impl WorldState {
    /// Charges one request of `latency` against the clock. Serial mode
    /// (no open pipeline): the clock advances to the completion — the
    /// classic behaviour, now expressed as "issue, schedule the
    /// completion event, wait for it". Pipeline mode: the request takes
    /// the earliest-free of its service's channels, the clock stays at
    /// issue time (advancing only on backpressure, when every channel
    /// is busy), and the completion is left pending in the scheduler
    /// until [`SimWorld::drain_pipeline`].
    fn charge(&mut self, op: Op, latency: SimDuration, order_key: Option<u64>) {
        // Completion events exist for the deterministic trace (and for
        // a pipeline's drain ordering); with tracing off they would be
        // scheduled and immediately discarded, so the hot path skips
        // the heap round-trip entirely.
        let tracing = self.trace.is_some();
        let (issued_at, completed_at) = match self.pipeline.as_mut() {
            None => {
                let issued_at = self.now;
                self.now += latency;
                if tracing {
                    self.sched.schedule(self.now, SchedEvent::Completion(op));
                }
                (issued_at, self.now)
            }
            Some(p) => {
                let svc = service_index(op.service());
                let now = self.now;
                p.inflight[svc].retain(|t| *t > now);
                if p.inflight[svc].len() >= p.depth {
                    // Every channel of this service is busy: the issuer
                    // blocks until the earliest in-flight request of
                    // the service completes.
                    let free = p.inflight[svc]
                        .iter()
                        .copied()
                        .min()
                        .expect("a full service has in-flight requests");
                    self.now = free;
                    p.stats.stalls += 1;
                    p.stats.stalls_by_service[svc] += 1;
                    let now = self.now;
                    p.inflight[svc].retain(|t| *t > now);
                }
                // max(channel-free, issue): both cases now equal `now`.
                let start = self.now;
                let mut completes = start + latency;
                if let Some(key) = order_key {
                    let slot = p.keyed.entry((svc, key)).or_insert(completes);
                    if *slot > completes {
                        completes = *slot;
                    }
                    *slot = completes;
                }
                p.inflight[svc].push(completes);
                p.stats.requests += 1;
                if tracing {
                    self.sched.schedule(completes, SchedEvent::Completion(op));
                }
                let now = self.now;
                let in_flight: usize = p
                    .inflight
                    .iter()
                    .map(|q| q.iter().filter(|t| **t > now).count())
                    .sum();
                p.stats.peak_in_flight = p.stats.peak_in_flight.max(in_flight);
                (start, completes)
            }
        };
        if let Some(log) = self.samples.as_mut() {
            log.push(LatencySample {
                op,
                tenant: self.tenant,
                issued_at,
                completed_at,
            });
        }
        self.fire_due_events();
    }

    /// Pops every scheduled event that is due at the current clock, in
    /// deterministic `(instant, seq)` order, appending to the event
    /// trace when one is being kept.
    fn fire_due_events(&mut self) {
        while let Some(fired) = self.sched.pop_due(self.now) {
            if let Some(trace) = self.trace.as_mut() {
                trace.push(fired);
            }
        }
    }
}

/// Handle to the shared simulation context.
///
/// Clones are shallow: all clones observe the same clock, RNG stream,
/// meters and fault plan.
///
/// # Examples
///
/// ```
/// use simworld::{Op, SimDuration, SimWorld};
///
/// let world = SimWorld::new(42);
/// world.record_op(Op::S3Put, 1024, 0);
/// assert_eq!(world.meters().op_count(Op::S3Put), 1);
/// assert!(world.now().as_micros() > 0); // the call took simulated time
/// ```
#[derive(Clone)]
pub struct SimWorld {
    inner: Arc<Mutex<WorldState>>,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("SimWorld")
            .field("now", &st.now)
            .field("config", &st.config)
            .finish_non_exhaustive()
    }
}

impl SimWorld {
    /// A world with default config and the given seed.
    pub fn new(seed: u64) -> SimWorld {
        SimWorld::with_config(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    /// A world with explicit configuration.
    pub fn with_config(config: SimConfig) -> SimWorld {
        SimWorld {
            inner: Arc::new(Mutex::new(WorldState {
                now: SimInstant::EPOCH,
                rng: SmallRng::seed_from_u64(config.seed),
                meters: MeterBook::new(),
                faults: FaultPlan::new(),
                config,
                sched: Scheduler::new(),
                timers: HashMap::new(),
                pipeline: None,
                trace: None,
                tenant: 0,
                samples: None,
                throttle_retries: 0,
            })),
        }
    }

    /// A zero-latency, strongly-consistent world for op counting.
    pub fn counting() -> SimWorld {
        SimWorld::with_config(SimConfig::counting())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.inner.lock().now
    }

    /// Moves the clock forward (e.g. to let eventual consistency settle or
    /// retention windows expire). Scheduled events that fall due fire in
    /// deterministic `(instant, seq)` order.
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.inner.lock();
        st.now += d;
        st.fire_due_events();
    }

    /// The active configuration.
    pub fn config(&self) -> SimConfig {
        self.inner.lock().config
    }

    /// Replica count services should use.
    pub fn replicas(&self) -> usize {
        self.inner.lock().config.replicas
    }

    /// Uniform `u64`.
    pub fn rand_u64(&self) -> u64 {
        self.inner.lock().rng.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn rand_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below bound must be positive");
        self.inner.lock().rng.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.inner.lock().rng.gen()
    }

    /// Records a billable API call: increments meters and charges the
    /// sampled request latency through the completion scheduler. With no
    /// pipeline open the clock advances to the completion (the serial
    /// behaviour); inside [`SimWorld::begin_pipeline`] the request joins
    /// the in-flight set instead and the clock stays at issue time.
    pub fn record_op(&self, op: Op, bytes_in: u64, bytes_out: u64) {
        let mut st = self.inner.lock();
        st.meters.record(op, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency = st.config.latency.sample(op, bytes_in + bytes_out, draw);
        st.charge(op, latency, None);
    }

    /// [`SimWorld::record_op`] with a completion-order key: requests
    /// carrying the same `order_key` complete in issue order even when
    /// pipelined (e.g. WAL sends to one SQS queue). Serial behaviour is
    /// identical to the unkeyed call.
    pub fn record_op_keyed(&self, op: Op, bytes_in: u64, bytes_out: u64, order_key: u64) {
        let mut st = self.inner.lock();
        st.meters.record(op, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency = st.config.latency.sample(op, bytes_in + bytes_out, draw);
        st.charge(op, latency, Some(order_key));
    }

    /// Records a billable scanning API call (e.g. a sharded
    /// `Query`/`Select`): meters like [`SimWorld::record_op`], but the
    /// clock additionally advances by the server-side scan cost of
    /// `scan_share_rows` — the rows the largest partition examined,
    /// since partitions scan in parallel and the slowest one gates the
    /// response.
    pub fn record_scan(&self, op: Op, bytes_in: u64, bytes_out: u64, scan_share_rows: u64) {
        let mut st = self.inner.lock();
        st.meters.record(op, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency =
            st.config
                .latency
                .sample_scan(op, bytes_in + bytes_out, scan_share_rows, draw);
        st.charge(op, latency, None);
    }

    /// Records a billable batch API call (`BatchPutAttributes`,
    /// `SendMessageBatch`, multi-object delete): meters **one** request
    /// carrying `entries` entries, and advances the clock by one round
    /// trip plus the per-entry marginal cost of `gating_entries` — the
    /// entry count of the busiest storage partition the batch lands on,
    /// since partitions apply their entries in parallel and the busiest
    /// one gates the response (consistent with [`SimWorld::record_scan`]
    /// pricing).
    pub fn record_batch(
        &self,
        op: Op,
        entries: u64,
        bytes_in: u64,
        bytes_out: u64,
        gating_entries: u64,
    ) {
        let mut st = self.inner.lock();
        st.meters.record_batch(op, entries, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency =
            st.config
                .latency
                .sample_batch(op, bytes_in + bytes_out, gating_entries, draw);
        st.charge(op, latency, None);
    }

    /// [`SimWorld::record_batch`] with a completion-order key (see
    /// [`SimWorld::record_op_keyed`]): batches on the same key complete
    /// in issue order even when pipelined, which is how a pipelined WAL
    /// keeps its BEGIN/payload/COMMIT batches ordered per queue.
    pub fn record_batch_keyed(
        &self,
        op: Op,
        entries: u64,
        bytes_in: u64,
        bytes_out: u64,
        gating_entries: u64,
        order_key: u64,
    ) {
        let mut st = self.inner.lock();
        st.meters.record_batch(op, entries, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency =
            st.config
                .latency
                .sample_batch(op, bytes_in + bytes_out, gating_entries, draw);
        st.charge(op, latency, Some(order_key));
    }

    /// Opens a pipelined region: until [`SimWorld::drain_pipeline`],
    /// every recorded request joins an in-flight set instead of
    /// advancing the clock to its completion. Each service runs up to
    /// `max_in_flight` concurrent channels; a request issued when all of
    /// its service's channels are busy blocks the issuer (backpressure)
    /// until the earliest channel frees. `max_in_flight == 1` recovers
    /// per-service serial behaviour while still overlapping *across*
    /// services, exactly as one outstanding request per connection
    /// would.
    ///
    /// # Panics
    ///
    /// Panics if `max_in_flight` is zero or a pipeline is already open
    /// (pipelines do not nest).
    pub fn begin_pipeline(&self, max_in_flight: usize) {
        assert!(max_in_flight > 0, "pipeline depth must be positive");
        let mut st = self.inner.lock();
        assert!(
            st.pipeline.is_none(),
            "a pipeline is already open; pipelines do not nest"
        );
        st.pipeline = Some(PipelineState {
            depth: max_in_flight,
            inflight: std::array::from_fn(|_| Vec::new()),
            keyed: HashMap::new(),
            stats: PipelineStats::default(),
        });
    }

    /// Resizes the open pipeline's per-service in-flight cap without
    /// draining it: requests already on the wire keep their completion
    /// instants, only the backpressure threshold moves. This is the
    /// lever an adaptive-depth controller pulls between groups (see
    /// `AdaptiveDepth`). A no-op when no pipeline is open.
    ///
    /// # Panics
    ///
    /// Panics if `max_in_flight` is zero.
    pub fn set_pipeline_depth(&self, max_in_flight: usize) {
        assert!(max_in_flight > 0, "pipeline depth must be positive");
        if let Some(p) = self.inner.lock().pipeline.as_mut() {
            p.depth = max_in_flight;
        }
    }

    /// Snapshot of the open pipeline's statistics so far (cumulative
    /// since [`SimWorld::begin_pipeline`]; `completed_at` is the
    /// current instant). `None` when no pipeline is open.
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        let st = self.inner.lock();
        st.pipeline.as_ref().map(|p| {
            let mut stats = p.stats;
            stats.completed_at = st.now;
            stats
        })
    }

    /// Closes the pipelined region: the clock advances to the last
    /// in-flight completion (firing every pending completion event in
    /// deterministic order) and the region's statistics are returned.
    /// A no-op returning default stats when no pipeline is open.
    pub fn drain_pipeline(&self) -> PipelineStats {
        let mut st = self.inner.lock();
        let Some(p) = st.pipeline.take() else {
            return PipelineStats::default();
        };
        let last = p
            .inflight
            .iter()
            .flat_map(|q| q.iter().copied())
            .max()
            .unwrap_or(st.now);
        st.now = st.now.max(last);
        st.fire_due_events();
        let mut stats = p.stats;
        stats.completed_at = st.now;
        stats
    }

    /// Depth of the currently open pipeline, if any.
    pub fn pipeline_depth(&self) -> Option<usize> {
        let st = self.inner.lock();
        st.pipeline.as_ref().map(|p| p.depth)
    }

    /// Requests currently in flight (0 outside a pipelined region).
    pub fn in_flight(&self) -> usize {
        let st = self.inner.lock();
        let Some(p) = st.pipeline.as_ref() else {
            return 0;
        };
        let now = st.now;
        p.inflight
            .iter()
            .map(|q| q.iter().filter(|t| **t > now).count())
            .sum()
    }

    /// Schedules a timer to fire `after` from now; returns its id. The
    /// timer fires when the clock reaches the deadline (checked with
    /// [`SimWorld::timer_due`]); it also appears in the deterministic
    /// event trace.
    pub fn schedule_timer(&self, after: SimDuration) -> TimerId {
        let mut st = self.inner.lock();
        let at = st.now + after;
        let seq = st.sched.schedule(at, SchedEvent::Timer);
        st.timers.insert(seq, at);
        // A zero-delay timer is due immediately: fire it now so the
        // heap never holds entries at or before the current instant
        // (the invariant cancel_timer's fired/unfired test relies on).
        st.fire_due_events();
        TimerId(seq)
    }

    /// `true` once `timer`'s deadline has passed (and it has not been
    /// cancelled or consumed).
    pub fn timer_due(&self, timer: TimerId) -> bool {
        let st = self.inner.lock();
        st.timers.get(&timer.0).is_some_and(|at| *at <= st.now)
    }

    /// The deadline of a live timer (`None` once cancelled/consumed).
    pub fn timer_deadline(&self, timer: TimerId) -> Option<SimInstant> {
        self.inner.lock().timers.get(&timer.0).copied()
    }

    /// Cancels (or consumes) a timer. Idempotent.
    pub fn cancel_timer(&self, timer: TimerId) {
        let mut st = self.inner.lock();
        if let Some(at) = st.timers.remove(&timer.0) {
            // Only an unfired entry (deadline still ahead) remains in
            // the heap and needs a cancellation mark. A fired entry was
            // already popped — marking it would park its seq in the
            // scheduler's cancelled set forever.
            if at > st.now {
                st.sched.cancel(timer.0);
            }
        }
    }

    /// Turns the deterministic event trace on or off. While on, every
    /// fired scheduler event (request completions, timers) is appended
    /// to a log retrievable with [`SimWorld::take_event_trace`] —
    /// equal seeds and equal call sequences produce equal traces.
    pub fn set_event_trace(&self, on: bool) {
        let mut st = self.inner.lock();
        st.trace = if on {
            Some(st.trace.take().unwrap_or_default())
        } else {
            None
        };
    }

    /// Takes the accumulated event trace (empty when tracing is off).
    pub fn take_event_trace(&self) -> Vec<FiredEvent> {
        let mut st = self.inner.lock();
        match st.trace.as_mut() {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }

    /// Sets the tenant id stamped onto subsequent latency samples. The
    /// fleet driver calls this before issuing each tenant's work;
    /// single-client runs leave it at the default `0`.
    pub fn set_tenant(&self, tenant: u64) {
        self.inner.lock().tenant = tenant;
    }

    /// The tenant id current requests are attributed to.
    pub fn tenant(&self) -> u64 {
        self.inner.lock().tenant
    }

    /// Turns on per-request latency sampling with a ring of `capacity`
    /// samples (see [`SampleLog`]). Off by default; recording costs
    /// nothing while disabled. Re-enabling replaces any prior ring.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_latency_samples(&self, capacity: usize) {
        self.inner.lock().samples = Some(SampleLog::new(capacity));
    }

    /// Turns latency sampling off, discarding any held samples.
    pub fn disable_latency_samples(&self) {
        self.inner.lock().samples = None;
    }

    /// Takes the samples recorded so far (oldest survivor first) and
    /// keeps sampling. Empty when sampling is off.
    pub fn take_latency_samples(&self) -> Vec<LatencySample> {
        match self.inner.lock().samples.as_mut() {
            Some(log) => log.drain(),
            None => Vec::new(),
        }
    }

    /// Backdates the most recent latency sample to `issued_at` (see
    /// [`SampleLog::backdate_last`]): after a retried call finally
    /// succeeds, the winning request's recorded span is stretched to
    /// the first attempt's issue so percentiles reflect client-observed
    /// latency. No-op while sampling is off.
    pub fn backdate_last_sample(&self, issued_at: SimInstant) {
        if let Some(log) = self.inner.lock().samples.as_mut() {
            log.backdate_last(issued_at);
        }
    }

    /// Records a request the provider *rejected* with a 503: the
    /// rejection is metered (and therefore billed — AWS charges for
    /// throttled requests) and costs a full round trip on the clock,
    /// but the caller's state machine sees an error and nothing is
    /// applied. Rejections are never order-keyed: a request that did
    /// not land constrains no successor.
    pub fn record_throttled(&self, op: Op, bytes_in: u64) {
        let mut st = self.inner.lock();
        st.meters.record_throttled(op, bytes_in);
        let draw: f64 = st.rng.gen();
        let latency = st.config.latency.sample(op, bytes_in, draw);
        st.charge(op, latency, None);
    }

    /// Counts one client-side backoff retry after a 503 (called by the
    /// retry machinery in `core`; pure accounting).
    pub fn note_throttle_retry(&self) {
        self.inner.lock().throttle_retries += 1;
    }

    /// Total client-side 503 backoff retries so far.
    pub fn throttle_retries(&self) -> u64 {
        self.inner.lock().throttle_retries
    }

    /// Records that an operation touched one storage shard of `service`
    /// (no billing, no clock movement — pure load accounting).
    pub fn record_shard_touch(&self, service: Service, shard: u32) {
        self.inner.lock().meters.record_shard_touch(service, shard);
    }

    /// Records that a fan-out operation touched every shard in
    /// `0..shards` of `service`, under one lock acquisition.
    pub fn record_shard_fanout(&self, service: Service, shards: u32) {
        let mut st = self.inner.lock();
        for shard in 0..shards {
            st.meters.record_shard_touch(service, shard);
        }
    }

    /// Records that a fan-out operation touched each listed shard id of
    /// `service`, under one lock acquisition — the sparse companion to
    /// [`SimWorld::record_shard_fanout`] for range-routed maps, whose
    /// stable ids stop being dense indices once a shard has split.
    pub fn record_shard_touches(&self, service: Service, shards: &[u32]) {
        let mut st = self.inner.lock();
        for &shard in shards {
            st.meters.record_shard_touch(service, shard);
        }
    }

    /// Adjusts a service's stored-bytes gauge.
    pub fn adjust_stored(&self, service: Service, delta: i64) {
        self.inner.lock().meters.adjust_stored(service, delta);
    }

    /// Snapshot of the billing ledger.
    pub fn meters(&self) -> MeterSnapshot {
        self.inner.lock().meters.snapshot()
    }

    /// Samples per-replica visibility instants for a write performed now.
    ///
    /// Index `i` is when replica `i` will serve the write. Under
    /// [`Consistency::Strong`] every entry is `now`. Under eventual
    /// consistency one randomly chosen replica (the one that accepted the
    /// write) serves it immediately; the rest lag by an independent
    /// uniform delay.
    pub fn sample_visibility(&self) -> Vec<SimInstant> {
        let mut st = self.inner.lock();
        let now = st.now;
        let replicas = st.config.replicas.max(1);
        match st.config.consistency {
            Consistency::Strong => vec![now; replicas],
            Consistency::Eventual { max_lag } => {
                let primary = st.rng.gen_range(0..replicas);
                (0..replicas)
                    .map(|r| {
                        if r == primary {
                            now
                        } else {
                            let lag = st.rng.gen_range(0..=max_lag.as_micros());
                            now + SimDuration::from_micros(lag)
                        }
                    })
                    .collect()
            }
        }
    }

    /// Picks the replica that will serve a read issued now.
    pub fn sample_read_replica(&self) -> usize {
        let mut st = self.inner.lock();
        let replicas = st.config.replicas.max(1);
        st.rng.gen_range(0..replicas)
    }

    /// Samples `n` independent read replicas under one lock acquisition
    /// — one per shard of a fan-out scan.
    pub fn sample_read_replicas(&self, n: usize) -> Vec<usize> {
        let mut st = self.inner.lock();
        let replicas = st.config.replicas.max(1);
        (0..n).map(|_| st.rng.gen_range(0..replicas)).collect()
    }

    /// Declares a protocol step boundary; returns `Err` if a test armed a
    /// crash here.
    ///
    /// # Errors
    ///
    /// [`Crashed`] when the fault plan fires; the caller must abandon the
    /// protocol immediately, leaving remote state as-is.
    pub fn crash_point(&self, site: CrashSite) -> Result<(), Crashed> {
        self.inner.lock().faults.check(site)
    }

    /// Mutates the fault plan (arming/disarming sites).
    pub fn with_faults<T>(&self, f: impl FnOnce(&mut FaultPlan) -> T) -> T {
        f(&mut self.inner.lock().faults)
    }

    /// The upper bound on replication lag under the current config
    /// (zero when strong). Advancing the clock by at least this much
    /// guarantees all past writes are visible everywhere.
    pub fn max_lag(&self) -> SimDuration {
        match self.inner.lock().config.consistency {
            Consistency::Strong => SimDuration::ZERO,
            Consistency::Eventual { max_lag } => max_lag,
        }
    }

    /// Advances the clock far enough that every write issued so far is
    /// visible on every replica ("let the cloud settle").
    pub fn settle(&self) {
        let lag = self.max_lag();
        if lag > SimDuration::ZERO {
            self.advance(lag + SimDuration::from_micros(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimWorld::new(7);
        let b = SimWorld::new(7);
        let xs: Vec<u64> = (0..10).map(|_| a.rand_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.rand_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn clones_share_state() {
        let a = SimWorld::new(1);
        let b = a.clone();
        a.advance(SimDuration::from_secs(5));
        assert_eq!(b.now(), SimInstant::EPOCH + SimDuration::from_secs(5));
        a.record_op(Op::SqsSendMessage, 10, 0);
        assert_eq!(b.meters().op_count(Op::SqsSendMessage), 1);
    }

    #[test]
    fn counting_world_keeps_clock_still() {
        let w = SimWorld::counting();
        w.record_op(Op::S3Put, 1 << 20, 0);
        w.record_op(Op::SdbSelect, 0, 4096);
        assert_eq!(w.now(), SimInstant::EPOCH);
    }

    #[test]
    fn default_world_advances_clock_per_op() {
        let w = SimWorld::new(0);
        let t0 = w.now();
        w.record_op(Op::S3Put, 8 * 1024, 0);
        assert!(w.now() > t0);
    }

    #[test]
    fn strong_visibility_is_immediate_everywhere() {
        let w = SimWorld::with_config(SimConfig {
            consistency: Consistency::Strong,
            replicas: 4,
            ..SimConfig::default()
        });
        let vis = w.sample_visibility();
        assert_eq!(vis.len(), 4);
        assert!(vis.iter().all(|t| *t == w.now()));
    }

    #[test]
    fn eventual_visibility_has_one_immediate_replica() {
        let w = SimWorld::with_config(SimConfig {
            seed: 3,
            consistency: Consistency::eventual(SimDuration::from_secs(10)),
            replicas: 5,
            ..SimConfig::default()
        });
        let now = w.now();
        let vis = w.sample_visibility();
        assert_eq!(vis.len(), 5);
        assert!(vis.contains(&now), "primary replica is immediate");
        assert!(vis.iter().all(|t| *t <= now + SimDuration::from_secs(10)));
    }

    #[test]
    fn settle_outruns_max_lag() {
        let w = SimWorld::with_config(SimConfig {
            consistency: Consistency::eventual(SimDuration::from_secs(2)),
            latency: LatencyModel::zero(),
            ..SimConfig::default()
        });
        let before = w.now();
        w.settle();
        assert!(w.now() - before > SimDuration::from_secs(2));
    }

    #[test]
    fn crash_point_propagates_armed_faults() {
        const SITE: CrashSite = CrashSite::new("world.test");
        let w = SimWorld::new(0);
        assert!(w.crash_point(SITE).is_ok());
        w.with_faults(|f| f.arm(SITE));
        assert!(w.crash_point(SITE).is_err());
        assert!(w.crash_point(SITE).is_ok(), "fires only once");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn rand_below_zero_panics() {
        SimWorld::new(0).rand_below(0);
    }

    /// A world with a constant (jitter-free) latency model, for exact
    /// pipeline arithmetic.
    fn flat_world() -> SimWorld {
        let flat = crate::latency::ServiceLatency {
            base: SimDuration::from_millis(10),
            per_8kb: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            per_scanned_row: SimDuration::ZERO,
            per_batch_entry: SimDuration::ZERO,
        };
        SimWorld::with_config(SimConfig {
            consistency: Consistency::Strong,
            latency: LatencyModel {
                s3: flat,
                simpledb: flat,
                sqs: flat,
            },
            ..SimConfig::default()
        })
    }

    #[test]
    fn pipelined_requests_overlap_up_to_depth() {
        let w = flat_world();
        w.begin_pipeline(4);
        for _ in 0..4 {
            w.record_op(Op::S3Put, 0, 0);
        }
        // Four 10 ms requests on four channels: all issued at t=0.
        assert_eq!(w.in_flight(), 4);
        assert_eq!(w.now(), SimInstant::EPOCH);
        let stats = w.drain_pipeline();
        assert_eq!(w.now(), SimInstant::EPOCH + SimDuration::from_millis(10));
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.peak_in_flight, 4);
    }

    #[test]
    fn full_channels_backpressure_the_issuer() {
        let w = flat_world();
        w.begin_pipeline(2);
        for _ in 0..3 {
            w.record_op(Op::S3Put, 0, 0);
        }
        // Third request had to wait for a channel: issued at t=10ms.
        assert_eq!(w.now(), SimInstant::EPOCH + SimDuration::from_millis(10));
        let stats = w.drain_pipeline();
        assert_eq!(stats.stalls, 1);
        assert_eq!(w.now(), SimInstant::EPOCH + SimDuration::from_millis(20));
    }

    #[test]
    fn services_pipeline_independently() {
        let w = flat_world();
        w.begin_pipeline(1);
        w.record_op(Op::S3Put, 0, 0);
        w.record_op(Op::SdbPutAttributes, 0, 0);
        w.record_op(Op::SqsSendMessage, 0, 0);
        // Depth 1 per service still overlaps across services.
        let stats = w.drain_pipeline();
        assert_eq!(w.now(), SimInstant::EPOCH + SimDuration::from_millis(10));
        assert_eq!(stats.peak_in_flight, 3);
    }

    #[test]
    fn serial_and_depth_one_single_service_agree() {
        // For one service, a depth-1 pipeline is the serial sum.
        let serial = flat_world();
        for _ in 0..5 {
            serial.record_op(Op::S3Put, 0, 0);
        }
        let piped = flat_world();
        piped.begin_pipeline(1);
        for _ in 0..5 {
            piped.record_op(Op::S3Put, 0, 0);
        }
        piped.drain_pipeline();
        assert_eq!(serial.now(), piped.now());
    }

    #[test]
    fn keyed_requests_complete_in_issue_order() {
        let w = SimWorld::new(9); // jittered latencies
        w.set_event_trace(true);
        w.begin_pipeline(8);
        for _ in 0..20 {
            w.record_op_keyed(Op::SqsSendMessage, 64, 0, 42);
        }
        w.drain_pipeline();
        let trace = w.take_event_trace();
        let completions: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e.event, SchedEvent::Completion(Op::SqsSendMessage)))
            .collect();
        assert_eq!(completions.len(), 20);
        // Completion order == issue (seq) order, and instants are
        // monotone: the per-key FIFO constraint held at depth 8.
        assert!(completions.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(completions.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn pipelining_leaves_the_rng_stream_untouched() {
        // The jitter draws must not depend on the pipeline mode, or a
        // pipelined run would diverge from its serial twin.
        let a = SimWorld::new(5);
        a.record_op(Op::S3Put, 100, 0);
        a.record_op(Op::SqsSendMessage, 10, 0);
        let b = SimWorld::new(5);
        b.begin_pipeline(4);
        b.record_op(Op::S3Put, 100, 0);
        b.record_op(Op::SqsSendMessage, 10, 0);
        b.drain_pipeline();
        assert_eq!(a.rand_u64(), b.rand_u64());
    }

    #[test]
    fn pipelined_time_never_exceeds_serial_time() {
        let serial = SimWorld::new(11);
        let piped = SimWorld::new(11);
        piped.begin_pipeline(4);
        for i in 0..30u64 {
            let op = match i % 3 {
                0 => Op::S3Put,
                1 => Op::SdbPutAttributes,
                _ => Op::SqsSendMessage,
            };
            serial.record_op(op, i * 100, 0);
            piped.record_op(op, i * 100, 0);
        }
        piped.drain_pipeline();
        assert!(piped.now() < serial.now());
    }

    #[test]
    fn set_pipeline_depth_resizes_backpressure_mid_region() {
        let w = flat_world();
        w.begin_pipeline(2);
        w.record_op(Op::S3Put, 0, 0);
        w.record_op(Op::S3Put, 0, 0);
        // At depth 2 the next two puts would stall; raising the cap
        // mid-region lets them join the in-flight set at t=0.
        w.set_pipeline_depth(4);
        assert_eq!(w.pipeline_depth(), Some(4));
        w.record_op(Op::S3Put, 0, 0);
        w.record_op(Op::S3Put, 0, 0);
        assert_eq!(w.now(), SimInstant::EPOCH);
        assert_eq!(w.in_flight(), 4);
        let stats = w.drain_pipeline();
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.peak_in_flight, 4);
        assert_eq!(w.now(), SimInstant::EPOCH + SimDuration::from_millis(10));
    }

    #[test]
    fn shrinking_the_depth_reinstates_backpressure() {
        let w = flat_world();
        w.begin_pipeline(4);
        w.record_op(Op::S3Put, 0, 0);
        w.record_op(Op::S3Put, 0, 0);
        w.set_pipeline_depth(1);
        // Two requests already in flight exceed the new cap of 1: the
        // next issue blocks until the earliest completion.
        w.record_op(Op::S3Put, 0, 0);
        assert_eq!(w.now(), SimInstant::EPOCH + SimDuration::from_millis(10));
        let stats = w.drain_pipeline();
        assert_eq!(stats.stalls, 1);
    }

    #[test]
    fn stalls_are_attributed_to_the_gating_service() {
        let w = flat_world();
        w.begin_pipeline(1);
        for _ in 0..3 {
            w.record_op(Op::S3Put, 0, 0);
        }
        w.record_op(Op::SqsSendMessage, 0, 0);
        w.record_op(Op::SqsSendMessage, 0, 0);
        let stats = w.drain_pipeline();
        assert_eq!(stats.stalls, 3);
        assert_eq!(stats.stalls_by_service, [2, 0, 1]);
        assert_eq!(stats.stalls_for(Service::S3), 2);
        assert_eq!(stats.gating_service(), Some(Service::S3));
        assert_eq!(PipelineStats::default().gating_service(), None);
    }

    #[test]
    fn pipeline_stats_snapshots_the_open_region() {
        let w = flat_world();
        assert!(w.pipeline_stats().is_none());
        w.begin_pipeline(2);
        w.record_op(Op::S3Put, 0, 0);
        let mid = w.pipeline_stats().expect("region is open");
        assert_eq!(mid.requests, 1);
        assert_eq!(mid.completed_at, w.now());
        let final_stats = w.drain_pipeline();
        assert_eq!(final_stats.requests, 1);
        assert!(w.pipeline_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_pipelines_panic() {
        let w = SimWorld::new(0);
        w.begin_pipeline(2);
        w.begin_pipeline(2);
    }

    #[test]
    fn drain_without_pipeline_is_a_noop() {
        let w = SimWorld::new(0);
        let t0 = w.now();
        assert_eq!(w.drain_pipeline(), PipelineStats::default());
        assert_eq!(w.now(), t0);
    }

    #[test]
    fn timers_fire_when_the_clock_passes_them() {
        let w = SimWorld::counting();
        let timer = w.schedule_timer(SimDuration::from_secs(1));
        assert!(!w.timer_due(timer));
        assert_eq!(
            w.timer_deadline(timer),
            Some(SimInstant::EPOCH + SimDuration::from_secs(1))
        );
        w.advance(SimDuration::from_secs(1));
        assert!(w.timer_due(timer));
        w.cancel_timer(timer);
        assert!(!w.timer_due(timer), "consumed timers never re-fire");
        assert_eq!(w.timer_deadline(timer), None);
    }

    #[test]
    fn cancelled_timer_is_not_due_and_leaves_no_trace() {
        let w = SimWorld::counting();
        w.set_event_trace(true);
        let timer = w.schedule_timer(SimDuration::from_secs(1));
        w.cancel_timer(timer);
        w.advance(SimDuration::from_secs(5));
        assert!(!w.timer_due(timer));
        assert!(w.take_event_trace().is_empty());
    }

    #[test]
    fn event_trace_is_deterministic_across_runs() {
        let run = || {
            let w = SimWorld::new(7);
            w.set_event_trace(true);
            w.begin_pipeline(3);
            let timer = w.schedule_timer(SimDuration::from_millis(1));
            for i in 0..12u64 {
                let op = if i % 2 == 0 {
                    Op::S3Put
                } else {
                    Op::SdbPutAttributes
                };
                w.record_op(op, i * 512, 0);
            }
            let _ = timer;
            w.drain_pipeline();
            (w.now(), w.take_event_trace())
        };
        let (now_a, trace_a) = run();
        let (now_b, trace_b) = run();
        assert_eq!(now_a, now_b);
        assert!(!trace_a.is_empty());
        assert_eq!(trace_a, trace_b);
    }

    #[test]
    fn latency_samples_bracket_serial_charges() {
        let w = flat_world();
        w.enable_latency_samples(16);
        w.record_op(Op::S3Put, 0, 0);
        w.record_op(Op::SdbPutAttributes, 0, 0);
        let samples = w.take_latency_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].issued_at, SimInstant::EPOCH);
        assert_eq!(samples[0].latency(), SimDuration::from_millis(10));
        assert_eq!(samples[1].issued_at, samples[0].completed_at);
        assert_eq!(samples[1].service(), Service::SimpleDb);
        // Draining keeps sampling on.
        w.record_op(Op::S3Put, 0, 0);
        assert_eq!(w.take_latency_samples().len(), 1);
    }

    #[test]
    fn pipelined_samples_record_issue_not_drain() {
        let w = flat_world();
        w.enable_latency_samples(16);
        w.begin_pipeline(2);
        for _ in 0..3 {
            w.record_op(Op::S3Put, 0, 0);
        }
        w.drain_pipeline();
        let samples = w.take_latency_samples();
        assert_eq!(samples.len(), 3);
        // First two overlap at t=0; the third waited for a channel.
        assert_eq!(samples[0].issued_at, SimInstant::EPOCH);
        assert_eq!(samples[1].issued_at, SimInstant::EPOCH);
        assert_eq!(
            samples[2].issued_at,
            SimInstant::EPOCH + SimDuration::from_millis(10)
        );
        // Each individual request still took one flat round trip.
        assert!(samples
            .iter()
            .all(|s| s.latency() == SimDuration::from_millis(10)));
    }

    #[test]
    fn sampling_is_off_by_default_and_tags_tenants() {
        let w = flat_world();
        w.record_op(Op::S3Put, 0, 0);
        assert!(w.take_latency_samples().is_empty());
        w.enable_latency_samples(8);
        assert_eq!(w.tenant(), 0);
        w.set_tenant(7);
        w.record_op(Op::S3Put, 0, 0);
        let samples = w.take_latency_samples();
        assert_eq!(samples[0].tenant, 7);
        w.disable_latency_samples();
        w.record_op(Op::S3Put, 0, 0);
        assert!(w.take_latency_samples().is_empty());
    }

    #[test]
    fn throttled_requests_cost_time_and_meter_but_apply_nothing() {
        let w = flat_world();
        let t0 = w.now();
        w.record_throttled(Op::SdbPutAttributes, 256);
        assert_eq!(w.now() - t0, SimDuration::from_millis(10));
        let m = w.meters();
        assert_eq!(m.op_count(Op::SdbPutAttributes), 1);
        assert_eq!(m.throttled(Service::SimpleDb), 1);
        assert_eq!(m.total_throttled(), 1);
        assert_eq!(w.throttle_retries(), 0);
        w.note_throttle_retry();
        assert_eq!(w.throttle_retries(), 1);
    }

    #[test]
    fn read_replica_in_range() {
        let w = SimWorld::with_config(SimConfig {
            replicas: 3,
            ..SimConfig::default()
        });
        for _ in 0..50 {
            assert!(w.sample_read_replica() < 3);
        }
    }
}

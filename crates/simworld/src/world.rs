//! The shared simulation context.
//!
//! A [`SimWorld`] bundles the virtual clock, a seeded RNG, the billing
//! meters and the fault plan behind one cheaply-clonable handle. Every
//! simulated AWS service and every client holds a clone, so a whole
//! experiment — clients, daemons, services — advances one logical
//! timeline and reads one ledger, deterministically for a given seed.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::{SimDuration, SimInstant};
use crate::faults::{CrashSite, Crashed, FaultPlan};
use crate::latency::LatencyModel;
use crate::metering::{MeterBook, MeterSnapshot, Op, Service};

/// The consistency regime the simulated services run under.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Consistency {
    /// Writes are visible everywhere immediately. Useful as a control in
    /// experiments, and for isolating protocol bugs from staleness.
    Strong,
    /// AWS semantics: each write propagates to each replica after an
    /// independent uniform delay in `[0, max_lag]`. A read served by a
    /// replica that has not yet received the newest write returns stale
    /// state.
    Eventual {
        /// Upper bound on per-replica propagation delay.
        max_lag: SimDuration,
    },
}

impl Consistency {
    /// Convenience constructor for the eventual regime.
    pub fn eventual(max_lag: SimDuration) -> Consistency {
        Consistency::Eventual { max_lag }
    }
}

/// Configuration for a [`SimWorld`].
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Consistency regime for every service.
    pub consistency: Consistency,
    /// Request latency model.
    pub latency: LatencyModel,
    /// Replica count per service datastore.
    pub replicas: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            consistency: Consistency::Eventual {
                max_lag: SimDuration::from_millis(500),
            },
            latency: LatencyModel::default(),
            replicas: 3,
        }
    }
}

impl SimConfig {
    /// A config for pure op-count analyses: strong consistency, zero
    /// latency — the clock stands still and nothing is ever stale.
    pub fn counting() -> SimConfig {
        SimConfig {
            seed: 0,
            consistency: Consistency::Strong,
            latency: LatencyModel::zero(),
            replicas: 1,
        }
    }
}

struct WorldState {
    now: SimInstant,
    rng: SmallRng,
    meters: MeterBook,
    faults: FaultPlan,
    config: SimConfig,
}

/// Handle to the shared simulation context.
///
/// Clones are shallow: all clones observe the same clock, RNG stream,
/// meters and fault plan.
///
/// # Examples
///
/// ```
/// use simworld::{Op, SimDuration, SimWorld};
///
/// let world = SimWorld::new(42);
/// world.record_op(Op::S3Put, 1024, 0);
/// assert_eq!(world.meters().op_count(Op::S3Put), 1);
/// assert!(world.now().as_micros() > 0); // the call took simulated time
/// ```
#[derive(Clone)]
pub struct SimWorld {
    inner: Arc<Mutex<WorldState>>,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("SimWorld")
            .field("now", &st.now)
            .field("config", &st.config)
            .finish_non_exhaustive()
    }
}

impl SimWorld {
    /// A world with default config and the given seed.
    pub fn new(seed: u64) -> SimWorld {
        SimWorld::with_config(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    /// A world with explicit configuration.
    pub fn with_config(config: SimConfig) -> SimWorld {
        SimWorld {
            inner: Arc::new(Mutex::new(WorldState {
                now: SimInstant::EPOCH,
                rng: SmallRng::seed_from_u64(config.seed),
                meters: MeterBook::new(),
                faults: FaultPlan::new(),
                config,
            })),
        }
    }

    /// A zero-latency, strongly-consistent world for op counting.
    pub fn counting() -> SimWorld {
        SimWorld::with_config(SimConfig::counting())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.inner.lock().now
    }

    /// Moves the clock forward (e.g. to let eventual consistency settle or
    /// retention windows expire).
    pub fn advance(&self, d: SimDuration) {
        self.inner.lock().now += d;
    }

    /// The active configuration.
    pub fn config(&self) -> SimConfig {
        self.inner.lock().config
    }

    /// Replica count services should use.
    pub fn replicas(&self) -> usize {
        self.inner.lock().config.replicas
    }

    /// Uniform `u64`.
    pub fn rand_u64(&self) -> u64 {
        self.inner.lock().rng.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn rand_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rand_below bound must be positive");
        self.inner.lock().rng.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.inner.lock().rng.gen()
    }

    /// Records a billable API call: increments meters and advances the
    /// clock by the sampled request latency.
    pub fn record_op(&self, op: Op, bytes_in: u64, bytes_out: u64) {
        let mut st = self.inner.lock();
        st.meters.record(op, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency = st.config.latency.sample(op, bytes_in + bytes_out, draw);
        st.now += latency;
    }

    /// Records a billable scanning API call (e.g. a sharded
    /// `Query`/`Select`): meters like [`SimWorld::record_op`], but the
    /// clock additionally advances by the server-side scan cost of
    /// `scan_share_rows` — the rows the largest partition examined,
    /// since partitions scan in parallel and the slowest one gates the
    /// response.
    pub fn record_scan(&self, op: Op, bytes_in: u64, bytes_out: u64, scan_share_rows: u64) {
        let mut st = self.inner.lock();
        st.meters.record(op, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency =
            st.config
                .latency
                .sample_scan(op, bytes_in + bytes_out, scan_share_rows, draw);
        st.now += latency;
    }

    /// Records a billable batch API call (`BatchPutAttributes`,
    /// `SendMessageBatch`, multi-object delete): meters **one** request
    /// carrying `entries` entries, and advances the clock by one round
    /// trip plus the per-entry marginal cost of `gating_entries` — the
    /// entry count of the busiest storage partition the batch lands on,
    /// since partitions apply their entries in parallel and the busiest
    /// one gates the response (consistent with [`SimWorld::record_scan`]
    /// pricing).
    pub fn record_batch(
        &self,
        op: Op,
        entries: u64,
        bytes_in: u64,
        bytes_out: u64,
        gating_entries: u64,
    ) {
        let mut st = self.inner.lock();
        st.meters.record_batch(op, entries, bytes_in, bytes_out);
        let draw: f64 = st.rng.gen();
        let latency =
            st.config
                .latency
                .sample_batch(op, bytes_in + bytes_out, gating_entries, draw);
        st.now += latency;
    }

    /// Records that an operation touched one storage shard of `service`
    /// (no billing, no clock movement — pure load accounting).
    pub fn record_shard_touch(&self, service: Service, shard: u32) {
        self.inner.lock().meters.record_shard_touch(service, shard);
    }

    /// Records that a fan-out operation touched every shard in
    /// `0..shards` of `service`, under one lock acquisition.
    pub fn record_shard_fanout(&self, service: Service, shards: u32) {
        let mut st = self.inner.lock();
        for shard in 0..shards {
            st.meters.record_shard_touch(service, shard);
        }
    }

    /// Adjusts a service's stored-bytes gauge.
    pub fn adjust_stored(&self, service: Service, delta: i64) {
        self.inner.lock().meters.adjust_stored(service, delta);
    }

    /// Snapshot of the billing ledger.
    pub fn meters(&self) -> MeterSnapshot {
        self.inner.lock().meters.snapshot()
    }

    /// Samples per-replica visibility instants for a write performed now.
    ///
    /// Index `i` is when replica `i` will serve the write. Under
    /// [`Consistency::Strong`] every entry is `now`. Under eventual
    /// consistency one randomly chosen replica (the one that accepted the
    /// write) serves it immediately; the rest lag by an independent
    /// uniform delay.
    pub fn sample_visibility(&self) -> Vec<SimInstant> {
        let mut st = self.inner.lock();
        let now = st.now;
        let replicas = st.config.replicas.max(1);
        match st.config.consistency {
            Consistency::Strong => vec![now; replicas],
            Consistency::Eventual { max_lag } => {
                let primary = st.rng.gen_range(0..replicas);
                (0..replicas)
                    .map(|r| {
                        if r == primary {
                            now
                        } else {
                            let lag = st.rng.gen_range(0..=max_lag.as_micros());
                            now + SimDuration::from_micros(lag)
                        }
                    })
                    .collect()
            }
        }
    }

    /// Picks the replica that will serve a read issued now.
    pub fn sample_read_replica(&self) -> usize {
        let mut st = self.inner.lock();
        let replicas = st.config.replicas.max(1);
        st.rng.gen_range(0..replicas)
    }

    /// Samples `n` independent read replicas under one lock acquisition
    /// — one per shard of a fan-out scan.
    pub fn sample_read_replicas(&self, n: usize) -> Vec<usize> {
        let mut st = self.inner.lock();
        let replicas = st.config.replicas.max(1);
        (0..n).map(|_| st.rng.gen_range(0..replicas)).collect()
    }

    /// Declares a protocol step boundary; returns `Err` if a test armed a
    /// crash here.
    ///
    /// # Errors
    ///
    /// [`Crashed`] when the fault plan fires; the caller must abandon the
    /// protocol immediately, leaving remote state as-is.
    pub fn crash_point(&self, site: CrashSite) -> Result<(), Crashed> {
        self.inner.lock().faults.check(site)
    }

    /// Mutates the fault plan (arming/disarming sites).
    pub fn with_faults<T>(&self, f: impl FnOnce(&mut FaultPlan) -> T) -> T {
        f(&mut self.inner.lock().faults)
    }

    /// The upper bound on replication lag under the current config
    /// (zero when strong). Advancing the clock by at least this much
    /// guarantees all past writes are visible everywhere.
    pub fn max_lag(&self) -> SimDuration {
        match self.inner.lock().config.consistency {
            Consistency::Strong => SimDuration::ZERO,
            Consistency::Eventual { max_lag } => max_lag,
        }
    }

    /// Advances the clock far enough that every write issued so far is
    /// visible on every replica ("let the cloud settle").
    pub fn settle(&self) {
        let lag = self.max_lag();
        if lag > SimDuration::ZERO {
            self.advance(lag + SimDuration::from_micros(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimWorld::new(7);
        let b = SimWorld::new(7);
        let xs: Vec<u64> = (0..10).map(|_| a.rand_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.rand_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn clones_share_state() {
        let a = SimWorld::new(1);
        let b = a.clone();
        a.advance(SimDuration::from_secs(5));
        assert_eq!(b.now(), SimInstant::EPOCH + SimDuration::from_secs(5));
        a.record_op(Op::SqsSendMessage, 10, 0);
        assert_eq!(b.meters().op_count(Op::SqsSendMessage), 1);
    }

    #[test]
    fn counting_world_keeps_clock_still() {
        let w = SimWorld::counting();
        w.record_op(Op::S3Put, 1 << 20, 0);
        w.record_op(Op::SdbSelect, 0, 4096);
        assert_eq!(w.now(), SimInstant::EPOCH);
    }

    #[test]
    fn default_world_advances_clock_per_op() {
        let w = SimWorld::new(0);
        let t0 = w.now();
        w.record_op(Op::S3Put, 8 * 1024, 0);
        assert!(w.now() > t0);
    }

    #[test]
    fn strong_visibility_is_immediate_everywhere() {
        let w = SimWorld::with_config(SimConfig {
            consistency: Consistency::Strong,
            replicas: 4,
            ..SimConfig::default()
        });
        let vis = w.sample_visibility();
        assert_eq!(vis.len(), 4);
        assert!(vis.iter().all(|t| *t == w.now()));
    }

    #[test]
    fn eventual_visibility_has_one_immediate_replica() {
        let w = SimWorld::with_config(SimConfig {
            seed: 3,
            consistency: Consistency::eventual(SimDuration::from_secs(10)),
            replicas: 5,
            ..SimConfig::default()
        });
        let now = w.now();
        let vis = w.sample_visibility();
        assert_eq!(vis.len(), 5);
        assert!(vis.contains(&now), "primary replica is immediate");
        assert!(vis.iter().all(|t| *t <= now + SimDuration::from_secs(10)));
    }

    #[test]
    fn settle_outruns_max_lag() {
        let w = SimWorld::with_config(SimConfig {
            consistency: Consistency::eventual(SimDuration::from_secs(2)),
            latency: LatencyModel::zero(),
            ..SimConfig::default()
        });
        let before = w.now();
        w.settle();
        assert!(w.now() - before > SimDuration::from_secs(2));
    }

    #[test]
    fn crash_point_propagates_armed_faults() {
        const SITE: CrashSite = CrashSite::new("world.test");
        let w = SimWorld::new(0);
        assert!(w.crash_point(SITE).is_ok());
        w.with_faults(|f| f.arm(SITE));
        assert!(w.crash_point(SITE).is_err());
        assert!(w.crash_point(SITE).is_ok(), "fires only once");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn rand_below_zero_panics() {
        SimWorld::new(0).rand_below(0);
    }

    #[test]
    fn read_replica_in_range() {
        let w = SimWorld::with_config(SimConfig {
            replicas: 3,
            ..SimConfig::default()
        });
        for _ in 0..50 {
            assert!(w.sample_read_replica() < 3);
        }
    }
}

//! One page of a key-ordered merge across hash shards.
//!
//! Shared by every sharded simulated backend (SimpleDB `Query`/`Select`,
//! S3 `LIST`): shards hold disjoint key sets, so one page of a global
//! key-ordered scan is the first `page_size` keys of a merge of
//! per-shard pages. The subtle parts — when a candidate is *final*, how
//! much to fetch from each shard, how to account scan work — live here
//! once, so a fix in the pagination machinery cannot drift between
//! services.

/// One page of a key-ordered scan across `shard_count` disjoint shards.
///
/// `fetch(shard, cursor, quota)` returns up to `quota` entries of that
/// shard strictly after `cursor` (`None` = from the start), in key
/// order, plus how many cells it examined. The merge uses an adaptive
/// quota: every shard contributes its proportional share first (a
/// uniform hash spreads consecutive keys evenly, so one round is the
/// common case), then the quota doubles for whichever shard gates the
/// merge. A candidate is *final* once its key is at or below every
/// unexhausted shard's fetch horizon — no shard can still produce a
/// smaller key, because shards hold disjoint key sets.
///
/// Returns `(page, more, scanned)`: the first `page_size` merged
/// entries, whether more entries remain past the page, and the cells
/// the busiest shard examined (shards scan in parallel, so the busiest
/// one gates a scan-priced call).
pub fn merged_shard_page<K, V, F>(
    shard_count: usize,
    after: Option<K>,
    page_size: usize,
    mut fetch: F,
) -> (Vec<(K, V)>, bool, u64)
where
    K: Ord + Clone,
    F: FnMut(usize, Option<&K>, usize) -> (Vec<(K, V)>, u64),
{
    let need = page_size + 1;
    let mut cursors: Vec<(Option<K>, bool)> = vec![(after, false); shard_count];
    let mut pool: Vec<(K, V)> = Vec::new();
    let mut examined_per_shard = vec![0u64; shard_count];
    let mut quota = need.div_ceil(shard_count).max(1);
    // First round: every shard contributes its proportional share.
    // Refill rounds: keys below the finalization boundary can only come
    // from the *gating* shard (the unexhausted shard with the smallest
    // fetch horizon), so only it is fetched again, with a doubled quota
    // while it blocks.
    let mut targets: Vec<usize> = (0..shard_count).collect();
    loop {
        for &i in &targets {
            let (cursor, exhausted) = &mut cursors[i];
            if *exhausted {
                continue;
            }
            let (items, examined) = fetch(i, cursor.as_ref(), quota);
            examined_per_shard[i] += examined;
            if items.len() < quota {
                *exhausted = true;
            }
            if let Some((last, _)) = items.last() {
                *cursor = Some(last.clone());
            }
            pool.extend(items);
        }
        let gate: Option<(usize, &K)> = cursors
            .iter()
            .enumerate()
            .filter(|(_, (_, exhausted))| !exhausted)
            .map(|(i, (c, _))| {
                (
                    i,
                    c.as_ref().expect("unexhausted shards have fetched a page"),
                )
            })
            .min_by(|a, b| a.1.cmp(b.1));
        let Some((gate, horizon)) = gate else {
            break; // every shard exhausted: the pool is complete
        };
        let finalized = pool.iter().filter(|(k, _)| k <= horizon).count();
        if finalized >= need {
            break;
        }
        targets = vec![gate];
        quota = quota.saturating_mul(2);
    }
    let mut candidates = pool;
    candidates.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
    let more = candidates.len() > page_size;
    candidates.truncate(page_size);
    let scanned = examined_per_shard.iter().copied().max().unwrap_or(0);
    (candidates, more, scanned)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake backend: shard i holds the keys with
    /// `key % shards == i`.
    fn fetch_from(
        shards: &[Vec<u32>],
    ) -> impl FnMut(usize, Option<&u32>, usize) -> (Vec<(u32, u32)>, u64) + '_ {
        |i, cursor, quota| {
            let items: Vec<(u32, u32)> = shards[i]
                .iter()
                .filter(|k| cursor.map(|c| *k > c).unwrap_or(true))
                .take(quota)
                .map(|k| (*k, *k * 10))
                .collect();
            let examined = items.len() as u64;
            (items, examined)
        }
    }

    fn shards_of(n: u32, shard_count: usize) -> Vec<Vec<u32>> {
        let mut shards = vec![Vec::new(); shard_count];
        for k in 0..n {
            shards[(k as usize) % shard_count].push(k);
        }
        shards
    }

    #[test]
    fn merges_in_key_order_without_skips_or_dups() {
        let shards = shards_of(100, 7);
        let mut after = None;
        let mut walked = Vec::new();
        loop {
            let (page, more, _) = merged_shard_page(7, after, 9, fetch_from(&shards));
            walked.extend(page.iter().map(|(k, _)| *k));
            if !more {
                break;
            }
            after = page.last().map(|(k, _)| *k);
        }
        assert_eq!(walked, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_shard_degenerates_to_plain_pagination() {
        let shards = shards_of(10, 1);
        let (page, more, scanned) = merged_shard_page(1, None, 4, fetch_from(&shards));
        assert_eq!(
            page.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        assert!(more);
        assert!(scanned >= 5, "needs page_size + 1 to prove truncation");
    }

    #[test]
    fn empty_shards_produce_an_empty_final_page() {
        let shards = shards_of(0, 4);
        let (page, more, scanned) = merged_shard_page(4, None, 5, fetch_from(&shards));
        assert!(page.is_empty());
        assert!(!more);
        assert_eq!(scanned, 0);
    }

    #[test]
    fn skewed_shards_gate_the_scan_charge() {
        // All keys on one shard: the busiest-shard charge equals the
        // whole scan, as a skewed layout deserves.
        let mut shards = vec![Vec::new(); 4];
        shards[2] = (0..20).collect();
        let (page, more, scanned) = merged_shard_page(4, None, 6, fetch_from(&shards));
        assert_eq!(page.len(), 6);
        assert!(more);
        assert!(scanned >= 7);
    }
}

//! Stable string hashing for shard placement, and the workspace's one
//! SplitMix64 step for seed-stable synthetic streams.

/// FNV-1a, 64-bit: a stable, seed-free hash so a key's shard is the same
/// in every run and on every platform. This is the placement function
/// behind every hash-sharded simulated backend (SimpleDB items, S3 keys):
/// using one shared implementation keeps shard layouts comparable across
/// services and experiments.
pub fn fnv1a_64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One SplitMix64 step: advances `state` by the golden gamma and
/// returns the mixed output. Deterministic and seed-stable across runs
/// and platforms — the single implementation behind every synthetic
/// stream in the workspace (blob contents, trace sizes, Zipf draws),
/// so the generators can never drift apart.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn splitmix64_reference_stream() {
        // Reference output for seed 0 (Vigna's SplitMix64 test vector):
        // pins the stream so every synthetic generator in the workspace
        // stays reproducible across refactors.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut state), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut state), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn spreads_consecutive_keys() {
        // Consecutive names must not clump on one shard.
        let shards = 16u64;
        let mut hit = [false; 16];
        for i in 0..64 {
            hit[(fnv1a_64(&format!("key{i:04}")) % shards) as usize] = true;
        }
        assert!(hit.iter().filter(|h| **h).count() >= 12);
    }
}

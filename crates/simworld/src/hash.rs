//! Stable string hashing for shard placement.

/// FNV-1a, 64-bit: a stable, seed-free hash so a key's shard is the same
/// in every run and on every platform. This is the placement function
/// behind every hash-sharded simulated backend (SimpleDB items, S3 keys):
/// using one shared implementation keeps shard layouts comparable across
/// services and experiments.
pub fn fnv1a_64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn spreads_consecutive_keys() {
        // Consecutive names must not clump on one shard.
        let shards = 16u64;
        let mut hit = [false; 16];
        for i in 0..64 {
            hit[(fnv1a_64(&format!("key{i:04}")) % shards) as usize] = true;
        }
        assert!(hit.iter().filter(|h| **h).count() >= 12);
    }
}

//! AIMD adaptive in-flight depth.
//!
//! A fixed `max_in_flight` is a hand-tuned knob: too shallow and the
//! issuer spends its life blocked on backpressure, too deep and the
//! extra channels sit idle. [`AdaptiveDepth`] replaces the knob with a
//! controller driven by [`PipelineStats`], the backpressure evidence
//! the pipelined accounting already collects:
//!
//! * **stalled window → multiplicative growth.** A stall means the
//!   issuer blocked because the window — not the gating service — was
//!   the bottleneck, so the depth doubles toward the gating service's
//!   concurrency demand (the AIMD step that escapes saturation fast);
//! * **stall-free window with idle channels → additive decay.** When
//!   the observed peak in flight never reached the cap, the excess
//!   depth bought nothing and is shed one channel at a time.
//!
//! The equilibrium is the AIMD fixed point: the smallest depth that
//! keeps the gating service busy without blocking the issuer — the
//! controller converges *stall-free*, without anyone guessing
//! `max_in_flight` per workload. Feed it cumulative snapshots of an
//! open region ([`crate::SimWorld::pipeline_stats`]) between groups,
//! or one drained region's final stats per step; call
//! [`AdaptiveDepth::region_complete`] whenever a region closes so the
//! internal delta counters restart from zero.

use crate::world::PipelineStats;

/// AIMD controller for the pipelined in-flight depth.
///
/// # Examples
///
/// ```
/// use simworld::{AdaptiveDepth, PipelineStats};
///
/// let mut ctl = AdaptiveDepth::new();
/// let start = ctl.depth();
/// // A stalled window doubles the depth toward the demand…
/// ctl.observe(&PipelineStats { requests: 16, stalls: 9, ..Default::default() });
/// assert_eq!(ctl.depth(), start * 2);
/// ctl.region_complete();
/// // …and a stall-free window that never filled the cap decays it.
/// ctl.observe(&PipelineStats { requests: 4, peak_in_flight: 2, ..Default::default() });
/// assert_eq!(ctl.depth(), start * 2 - 1);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct AdaptiveDepth {
    depth: usize,
    min: usize,
    max: usize,
    /// Cumulative counters already accounted for, so repeated
    /// observations of one open region react to the *delta* only.
    seen_requests: u64,
    seen_stalls: u64,
}

impl AdaptiveDepth {
    /// Depth a fresh controller starts probing from.
    pub const DEFAULT_START: usize = 2;
    /// Default upper bound on the window.
    pub const DEFAULT_MAX: usize = 32;

    /// A controller starting at [`AdaptiveDepth::DEFAULT_START`],
    /// bounded by `[1, DEFAULT_MAX]`.
    pub fn new() -> AdaptiveDepth {
        AdaptiveDepth::with_bounds(AdaptiveDepth::DEFAULT_START, 1, AdaptiveDepth::DEFAULT_MAX)
    }

    /// A controller starting at `start`, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min <= max`.
    pub fn with_bounds(start: usize, min: usize, max: usize) -> AdaptiveDepth {
        assert!(min >= 1, "depth bounds must be positive");
        assert!(min <= max, "min depth must not exceed max depth");
        AdaptiveDepth {
            depth: start.clamp(min, max),
            min,
            max,
            seen_requests: 0,
            seen_stalls: 0,
        }
    }

    /// The depth the next window should run at.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Feeds one observation window: either a cumulative snapshot of
    /// the open region (only the delta since the last call counts) or
    /// a drained region's final stats. Windows that issued no requests
    /// carry no evidence and leave the depth unchanged.
    pub fn observe(&mut self, stats: &PipelineStats) {
        let requests = stats.requests.saturating_sub(self.seen_requests);
        let stalls = stats.stalls.saturating_sub(self.seen_stalls);
        self.seen_requests = stats.requests;
        self.seen_stalls = stats.stalls;
        if requests == 0 {
            return;
        }
        if stalls > 0 {
            self.depth = (self.depth * 2).min(self.max);
        } else if stats.peak_in_flight < self.depth {
            self.depth = (self.depth - 1).max(self.min);
        }
    }

    /// Declares the observed region closed: the next [`observe`]
    /// reads a fresh region whose counters restart at zero.
    ///
    /// [`observe`]: AdaptiveDepth::observe
    pub fn region_complete(&mut self) {
        self.seen_requests = 0;
        self.seen_stalls = 0;
    }
}

impl Default for AdaptiveDepth {
    fn default() -> AdaptiveDepth {
        AdaptiveDepth::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use crate::latency::{LatencyModel, ServiceLatency};
    use crate::metering::Op;
    use crate::world::{Consistency, SimConfig, SimWorld};

    fn window(requests: u64, stalls: u64, peak: usize) -> PipelineStats {
        PipelineStats {
            requests,
            stalls,
            peak_in_flight: peak,
            ..PipelineStats::default()
        }
    }

    #[test]
    fn stalled_windows_grow_multiplicatively_to_the_cap() {
        let mut ctl = AdaptiveDepth::with_bounds(1, 1, 16);
        for expected in [2, 4, 8, 16, 16] {
            ctl.observe(&window(
                ctl.seen_requests + 10,
                ctl.seen_stalls + 5,
                expected,
            ));
            assert_eq!(ctl.depth(), expected, "growth must double, capped at max");
        }
    }

    #[test]
    fn idle_stall_free_windows_decay_additively_to_the_floor() {
        let mut ctl = AdaptiveDepth::with_bounds(4, 2, 32);
        for expected in [3, 2, 2] {
            ctl.observe(&window(ctl.seen_requests + 10, ctl.seen_stalls, 1));
            ctl.region_complete();
            assert_eq!(
                ctl.depth(),
                expected,
                "decay must be additive, floored at min"
            );
        }
    }

    #[test]
    fn a_saturated_stall_free_window_holds_the_depth() {
        let mut ctl = AdaptiveDepth::with_bounds(4, 1, 32);
        // Stall-free and the peak filled the cap: perfectly sized.
        ctl.observe(&window(10, 0, 4));
        assert_eq!(ctl.depth(), 4);
    }

    #[test]
    fn empty_windows_carry_no_evidence() {
        let mut ctl = AdaptiveDepth::with_bounds(4, 1, 32);
        ctl.observe(&window(0, 0, 0));
        assert_eq!(ctl.depth(), 4);
    }

    #[test]
    fn cumulative_snapshots_react_to_the_delta_only() {
        let mut ctl = AdaptiveDepth::with_bounds(2, 1, 32);
        ctl.observe(&window(10, 3, 2));
        assert_eq!(ctl.depth(), 4);
        // Same cumulative stall count again: the delta is zero stalls,
        // and the cumulative peak (4) fills the new cap, so hold.
        ctl.observe(&window(20, 3, 4));
        assert_eq!(ctl.depth(), 4);
    }

    /// End to end on a real region: a bursty issuer starting from a
    /// shallow window converges to a stall-free depth that covers the
    /// burst.
    #[test]
    fn converges_stall_free_on_a_bursty_region() {
        let flat = ServiceLatency {
            base: SimDuration::from_millis(10),
            per_8kb: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            per_scanned_row: SimDuration::ZERO,
            per_batch_entry: SimDuration::ZERO,
        };
        let world = SimWorld::with_config(SimConfig {
            consistency: Consistency::Strong,
            latency: LatencyModel {
                s3: flat,
                simpledb: flat,
                sqs: flat,
            },
            ..SimConfig::default()
        });
        let mut ctl = AdaptiveDepth::with_bounds(1, 1, 32);
        let mut last_stats = PipelineStats::default();
        for _ in 0..12 {
            world.begin_pipeline(ctl.depth());
            for _ in 0..8 {
                world.record_op(Op::S3Put, 0, 0);
            }
            last_stats = world.drain_pipeline();
            ctl.observe(&last_stats);
            ctl.region_complete();
        }
        assert_eq!(
            last_stats.stalls, 0,
            "the controller must converge stall-free"
        );
        assert!(
            ctl.depth() >= 8,
            "the converged window must cover the burst: {}",
            ctl.depth()
        );
    }
}

//! Virtual time for the simulation.
//!
//! The entire cloud simulation runs on a logical clock measured in
//! microseconds. Nothing in the workspace reads wall-clock time; every
//! latency, propagation delay, retention window and visibility timeout is
//! expressed against [`SimInstant`] so that runs are perfectly
//! reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since the simulation epoch.
///
/// # Examples
///
/// ```
/// use simworld::{SimDuration, SimInstant};
///
/// let t = SimInstant::EPOCH + SimDuration::from_secs(3);
/// assert_eq!(t.as_micros(), 3_000_000);
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The origin of simulated time.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Builds an instant from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimInstant(micros)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub const fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, d: SimDuration) -> Option<SimInstant> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(SimInstant(v)),
            None => None,
        }
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;

    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use simworld::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_micros(), 1_500_000);
/// assert_eq!(d.to_string(), "1.500s");
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Builds a duration from minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimDuration(minutes * 60_000_000)
    }

    /// Builds a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Builds a duration from days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros < 1_000 {
            write!(f, "{micros}us")
        } else if micros < 1_000_000 {
            write!(f, "{}.{:03}ms", micros / 1_000, micros % 1_000)
        } else {
            write!(
                f,
                "{}.{:03}s",
                micros / 1_000_000,
                (micros % 1_000_000) / 1_000
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let t = SimInstant::from_micros(10);
        let t2 = t + SimDuration::from_micros(5);
        assert_eq!(t2.as_micros(), 15);
        assert_eq!(t2 - t, SimDuration::from_micros(5));
    }

    #[test]
    fn subtraction_saturates_instead_of_underflowing() {
        let early = SimInstant::from_micros(5);
        let late = SimInstant::from_micros(9);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_minutes(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_minutes(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn duration_display_is_humane() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.000s");
    }

    #[test]
    fn instant_display_shows_offset() {
        let t = SimInstant::EPOCH + SimDuration::from_secs(2);
        assert_eq!(t.to_string(), "t+2.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        let t = SimInstant::from_micros(u64::MAX);
        assert!(t.checked_add(SimDuration::from_micros(1)).is_none());
        assert!(t.checked_add(SimDuration::ZERO).is_some());
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        let d = SimDuration::from_micros(u64::MAX / 2 + 1);
        assert_eq!(d.saturating_mul(3).as_micros(), u64::MAX);
    }
}

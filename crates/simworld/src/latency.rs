//! Per-operation latency model.
//!
//! The paper's future-work section notes that op counts alone do not show
//! "the impact of the extra operations on elapsed time"; the simulator
//! models that impact so the bench harness can report elapsed simulated
//! time next to op counts. Each API call advances the virtual clock by a
//! base round-trip plus a per-byte transfer term plus deterministic jitter.

use serde::{Deserialize, Serialize};

use crate::clock::SimDuration;
use crate::metering::{Op, Service};

/// Latency parameters for one service.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ServiceLatency {
    /// Fixed round-trip time per request.
    pub base: SimDuration,
    /// Extra time per 8 KB of payload in either direction.
    pub per_8kb: SimDuration,
    /// Uniform jitter in `[0, jitter]` added per request.
    pub jitter: SimDuration,
    /// Server-side cost per row a scan examines. Unlike the transfer
    /// term this parallelises across storage partitions: a sharded
    /// query charges the *largest partition's share* of the scan (see
    /// [`LatencyModel::sample_scan`]).
    pub per_scanned_row: SimDuration,
    /// Marginal server-side cost per entry of a *batch* request
    /// (`BatchPutAttributes`, `SendMessageBatch`, multi-object delete).
    /// The batch pays one base round trip; each entry then adds this
    /// term — and like the scan term it parallelises across storage
    /// partitions, so a batch spread over shards charges only the
    /// busiest shard's entry share (see [`LatencyModel::sample_batch`]).
    pub per_batch_entry: SimDuration,
}

/// Latency model for the whole cloud.
///
/// Defaults approximate WAN round trips to AWS circa 2009: tens of
/// milliseconds per request, with SimpleDB a little slower than S3 on
/// writes and SQS the cheapest per call.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LatencyModel {
    /// S3 request latency.
    pub s3: ServiceLatency,
    /// SimpleDB request latency.
    pub simpledb: ServiceLatency,
    /// SQS request latency.
    pub sqs: ServiceLatency,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            s3: ServiceLatency {
                base: SimDuration::from_millis(40),
                per_8kb: SimDuration::from_micros(800),
                jitter: SimDuration::from_millis(10),
                per_scanned_row: SimDuration::from_micros(20),
                per_batch_entry: SimDuration::from_micros(100),
            },
            simpledb: ServiceLatency {
                base: SimDuration::from_millis(50),
                per_8kb: SimDuration::from_millis(2),
                jitter: SimDuration::from_millis(15),
                per_scanned_row: SimDuration::from_micros(50),
                per_batch_entry: SimDuration::from_millis(1),
            },
            sqs: ServiceLatency {
                base: SimDuration::from_millis(30),
                per_8kb: SimDuration::from_millis(1),
                jitter: SimDuration::from_millis(8),
                // Receives scan the sampled storage servers for visible
                // messages; servers scan in parallel, so the busiest
                // sampled server's message count is the charged share.
                // This is why spreading a workload over more queues
                // yields deterministic virtual-time speedup. The 2009
                // service had no long polling and notoriously slow
                // receives on deep queues, hence the steep per-row cost.
                per_scanned_row: SimDuration::from_micros(100),
                per_batch_entry: SimDuration::from_micros(300),
            },
        }
    }
}

impl LatencyModel {
    /// A model where every call takes zero time — useful for pure
    /// op-counting analyses where the clock should stand still.
    pub fn zero() -> LatencyModel {
        let z = ServiceLatency {
            base: SimDuration::ZERO,
            per_8kb: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            per_scanned_row: SimDuration::ZERO,
            per_batch_entry: SimDuration::ZERO,
        };
        LatencyModel {
            s3: z,
            simpledb: z,
            sqs: z,
        }
    }

    /// Parameters for `service`.
    pub fn service(&self, service: Service) -> ServiceLatency {
        match service {
            Service::S3 => self.s3,
            Service::SimpleDb => self.simpledb,
            Service::Sqs => self.sqs,
        }
    }

    /// Latency of one call moving `payload_bytes`, before jitter.
    /// `jitter_draw` must be uniform in `[0, 1]`.
    pub fn sample(&self, op: Op, payload_bytes: u64, jitter_draw: f64) -> SimDuration {
        let p = self.service(op.service());
        let chunks = payload_bytes.div_ceil(8 * 1024);
        let jitter = SimDuration::from_micros(
            (p.jitter.as_micros() as f64 * jitter_draw.clamp(0.0, 1.0)) as u64,
        );
        p.base + p.per_8kb.saturating_mul(chunks) + jitter
    }

    /// Latency of a scanning call (`Query`/`Select`/`LIST`) whose
    /// server-side partitions scan in parallel. `scan_share_rows` is
    /// the rows the *largest* partition examined — the caller knows the
    /// real per-partition split, and elapsed time follows the slowest
    /// partition, so a skewed shard layout is charged honestly. The
    /// base round trip, the client-bound transfer term and the jitter
    /// stay serial. This is where sharding buys virtual-time query
    /// speedup.
    pub fn sample_scan(
        &self,
        op: Op,
        payload_bytes: u64,
        scan_share_rows: u64,
        jitter_draw: f64,
    ) -> SimDuration {
        let p = self.service(op.service());
        self.sample(op, payload_bytes, jitter_draw)
            + p.per_scanned_row.saturating_mul(scan_share_rows)
    }

    /// Latency of a batch call carrying many entries in one request.
    /// The batch pays one base round trip plus the transfer term for the
    /// whole payload; each entry then adds the marginal
    /// [`ServiceLatency::per_batch_entry`] cost. `gating_entries` is the
    /// entry count of the *busiest* storage partition the batch lands on
    /// (all entries, for an unsharded target like a single SQS queue):
    /// partitions apply their entries in parallel, so the busiest one
    /// gates the response — the same honesty rule as
    /// [`LatencyModel::sample_scan`]. This is where batching buys its
    /// virtual-time win: N point ops pay N round trips, one batch pays
    /// one round trip plus N marginal terms.
    pub fn sample_batch(
        &self,
        op: Op,
        payload_bytes: u64,
        gating_entries: u64,
        jitter_draw: f64,
    ) -> SimDuration {
        let p = self.service(op.service());
        self.sample(op, payload_bytes, jitter_draw)
            + p.per_batch_entry.saturating_mul(gating_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        let m = LatencyModel::zero();
        assert_eq!(m.sample(Op::S3Put, 1 << 20, 1.0), SimDuration::ZERO);
        assert_eq!(m.sample(Op::SqsSendMessage, 0, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn payload_increases_latency() {
        let m = LatencyModel::default();
        let small = m.sample(Op::S3Put, 1024, 0.0);
        let large = m.sample(Op::S3Put, 10 * 1024 * 1024, 0.0);
        assert!(large > small);
    }

    #[test]
    fn jitter_draw_bounds_respected() {
        let m = LatencyModel::default();
        let lo = m.sample(Op::SdbQuery, 0, 0.0);
        let hi = m.sample(Op::SdbQuery, 0, 1.0);
        assert_eq!(
            hi.as_micros() - lo.as_micros(),
            m.simpledb.jitter.as_micros()
        );
        // Out-of-range draws clamp rather than extrapolate.
        assert_eq!(m.sample(Op::SdbQuery, 0, 7.5), hi);
    }

    #[test]
    fn zero_payload_charges_no_transfer_term() {
        let m = LatencyModel::default();
        assert_eq!(m.sample(Op::S3Head, 0, 0.0), m.s3.base);
    }

    #[test]
    fn batch_beats_point_ops_for_same_work() {
        // One 10-entry batch must be cheaper than 10 point round trips
        // moving the same payload — the tentpole claim in miniature.
        let m = LatencyModel::default();
        let point_total = m.sample(Op::SqsSendMessage, 1024, 0.0).saturating_mul(10);
        let batch = m.sample_batch(Op::SqsSendMessageBatch, 10 * 1024, 10, 0.0);
        assert!(batch < point_total, "{batch:?} !< {point_total:?}");
    }

    #[test]
    fn batch_gating_entries_charge_marginally() {
        let m = LatencyModel::default();
        let one = m.sample_batch(Op::SdbBatchPutAttributes, 0, 1, 0.0);
        let ten = m.sample_batch(Op::SdbBatchPutAttributes, 0, 10, 0.0);
        assert_eq!(
            ten.as_micros() - one.as_micros(),
            m.simpledb.per_batch_entry.as_micros() * 9
        );
        // A zero-entry gate collapses to the plain request latency.
        assert_eq!(
            m.sample_batch(Op::S3DeleteObjects, 0, 0, 0.0),
            m.sample(Op::S3DeleteObjects, 0, 0.0)
        );
    }
}

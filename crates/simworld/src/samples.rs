//! Per-request latency samples and exact percentile reduction.
//!
//! The fleet benches need tail latencies (p50/p99/p999), not totals, and
//! they need them *per service and per tenant* without replaying the
//! event trace after every run. The world therefore records one
//! [`LatencySample`] per charged request — issue instant, completion
//! instant, the `Op`, and the tenant id that was current when the request
//! was issued — into a bounded [`SampleLog`] ring. [`percentiles`]
//! reduces a batch of latencies exactly (nearest-rank over the sorted
//! samples), so a p999 is a real observed request, never an interpolated
//! fiction.
//!
//! Sampling is off by default and costs nothing when disabled; see
//! [`SimWorld::enable_latency_samples`](crate::SimWorld::enable_latency_samples).

use crate::clock::{SimDuration, SimInstant};
use crate::metering::{Op, Service};

/// One charged request: when it was issued, when it completed, what it
/// was, and which tenant issued it.
///
/// In pipelined mode `issued_at` is the instant the request entered the
/// wire (after any backpressure stall) and `completed_at` the instant
/// the completion scheduler retires it; in serial mode the two bracket
/// the latency charge directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySample {
    /// The operation that was charged.
    pub op: Op,
    /// Tenant current at issue time (see [`crate::SimWorld::set_tenant`]).
    pub tenant: u64,
    /// Instant the request was issued.
    pub issued_at: SimInstant,
    /// Instant the request completed.
    pub completed_at: SimInstant,
}

impl LatencySample {
    /// The service the sampled operation belongs to.
    pub fn service(&self) -> Service {
        self.op.service()
    }

    /// Issue-to-completion latency.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.issued_at)
    }
}

/// A bounded ring of [`LatencySample`]s.
///
/// Once `capacity` samples have been recorded the oldest are overwritten,
/// so long fleet runs keep a recent window instead of growing without
/// bound. [`SampleLog::recorded`] still counts every push.
///
/// # Examples
///
/// ```
/// use simworld::{LatencySample, Op, SampleLog, SimInstant};
///
/// let mut log = SampleLog::new(2);
/// for i in 0..3 {
///     log.push(LatencySample {
///         op: Op::S3Put,
///         tenant: i,
///         issued_at: SimInstant::from_micros(i),
///         completed_at: SimInstant::from_micros(i + 10),
///     });
/// }
/// assert_eq!(log.recorded(), 3);
/// let kept = log.drain();
/// assert_eq!(kept.len(), 2);
/// // Oldest sample was overwritten; order of the survivors is preserved.
/// assert_eq!(kept[0].tenant, 1);
/// assert_eq!(kept[1].tenant, 2);
/// ```
#[derive(Clone, Debug)]
pub struct SampleLog {
    capacity: usize,
    buf: Vec<LatencySample>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    recorded: u64,
}

impl SampleLog {
    /// An empty log that keeps at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> SampleLog {
        assert!(capacity > 0, "SampleLog capacity must be nonzero");
        SampleLog {
            capacity,
            buf: Vec::new(),
            head: 0,
            recorded: 0,
        }
    }

    /// Records one sample, overwriting the oldest if the ring is full.
    pub fn push(&mut self, sample: LatencySample) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total samples ever pushed, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Rewrites the most recently pushed sample's `issued_at` to an
    /// earlier instant. Retry loops use this after a success to stretch
    /// the winning request's span back to the *first* attempt's issue,
    /// so the recorded latency is what the client experienced — backoff
    /// pauses and rejected attempts included. A later `issued_at` is
    /// ignored; an empty log is a no-op.
    pub fn backdate_last(&mut self, issued_at: SimInstant) {
        let last = if self.buf.len() < self.capacity {
            self.buf.len().wrapping_sub(1)
        } else {
            (self.head + self.capacity - 1) % self.capacity
        };
        if let Some(sample) = self.buf.get_mut(last) {
            if issued_at < sample.issued_at {
                sample.issued_at = issued_at;
            }
        }
    }

    /// Removes and returns the held samples in record order (oldest
    /// survivor first). The log stays usable and keeps recording.
    pub fn drain(&mut self) -> Vec<LatencySample> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        buf.rotate_left(head);
        buf
    }
}

/// Exact percentiles over a set of latencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of samples reduced.
    pub count: usize,
    /// Median (nearest-rank).
    pub p50: SimDuration,
    /// 99th percentile (nearest-rank).
    pub p99: SimDuration,
    /// 99.9th percentile (nearest-rank).
    pub p999: SimDuration,
    /// Largest observed latency.
    pub max: SimDuration,
}

/// Reduces latencies to exact nearest-rank percentiles.
///
/// Returns `None` for an empty input. Every reported value is an actual
/// observed sample (rank `⌈q·n⌉`, 1-based), so percentiles are exact and
/// monotone: `p50 ≤ p99 ≤ p999 ≤ max` always holds.
///
/// # Examples
///
/// ```
/// use simworld::{percentiles, SimDuration};
///
/// let lat: Vec<SimDuration> = (1..=1000).map(SimDuration::from_micros).collect();
/// let p = percentiles(lat).unwrap();
/// assert_eq!(p.p50.as_micros(), 500);
/// assert_eq!(p.p99.as_micros(), 990);
/// assert_eq!(p.p999.as_micros(), 999);
/// assert_eq!(p.max.as_micros(), 1000);
/// ```
pub fn percentiles(mut latencies: Vec<SimDuration>) -> Option<Percentiles> {
    if latencies.is_empty() {
        return None;
    }
    latencies.sort_unstable();
    let n = latencies.len();
    let rank = |q: f64| {
        let r = (q * n as f64).ceil() as usize;
        latencies[r.clamp(1, n) - 1]
    };
    Some(Percentiles {
        count: n,
        p50: rank(0.50),
        p99: rank(0.99),
        p999: rank(0.999),
        max: latencies[n - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backdating_stretches_only_the_last_sample_and_never_forward() {
        let mut log = SampleLog::new(2);
        let sample = |issued: u64, done: u64| LatencySample {
            op: Op::S3Put,
            tenant: 0,
            issued_at: SimInstant::from_micros(issued),
            completed_at: SimInstant::from_micros(done),
        };
        log.backdate_last(SimInstant::EPOCH); // empty: no-op
        log.push(sample(100, 110));
        log.push(sample(200, 210));
        log.push(sample(300, 310)); // wraps; overwrites the first
        log.backdate_last(SimInstant::from_micros(250));
        log.backdate_last(SimInstant::from_micros(400)); // forward: ignored
        let kept = log.drain();
        assert_eq!(kept[0].issued_at, SimInstant::from_micros(200));
        assert_eq!(kept[1].issued_at, SimInstant::from_micros(250));
        assert_eq!(kept[1].completed_at, SimInstant::from_micros(310));
    }

    fn sample(t: u64, micros: u64) -> LatencySample {
        LatencySample {
            op: Op::S3Put,
            tenant: t,
            issued_at: SimInstant::EPOCH,
            completed_at: SimInstant::from_micros(micros),
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_preserves_order() {
        let mut log = SampleLog::new(3);
        for i in 0..5 {
            log.push(sample(i, i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        let tenants: Vec<u64> = log.drain().iter().map(|s| s.tenant).collect();
        assert_eq!(tenants, vec![2, 3, 4]);
        // Draining resets the window but not the lifetime count.
        assert!(log.is_empty());
        assert_eq!(log.recorded(), 5);
        log.push(sample(9, 9));
        assert_eq!(log.drain().len(), 1);
    }

    #[test]
    fn percentiles_of_single_sample_collapse() {
        let p = percentiles(vec![SimDuration::from_micros(42)]).unwrap();
        assert_eq!(p.count, 1);
        assert_eq!(p.p50, p.p999);
        assert_eq!(p.max.as_micros(), 42);
    }

    #[test]
    fn percentiles_are_monotone_and_exact() {
        // Unsorted input, heavy tail: 499 sub-97µs samples + 1 outlier.
        let mut lat: Vec<SimDuration> =
            (0..499).map(|i| SimDuration::from_micros(i % 97)).collect();
        lat.push(SimDuration::from_secs(1));
        let p = percentiles(lat).unwrap();
        assert!(p.p50 <= p.p99 && p.p99 <= p.p999 && p.p999 <= p.max);
        assert_eq!(p.max, SimDuration::from_secs(1));
        // One outlier in 500: past p99's rank, exactly p999's.
        assert!(p.p99.as_micros() < 97);
        assert_eq!(p.p999, SimDuration::from_secs(1));
    }

    #[test]
    fn empty_input_reduces_to_none() {
        assert!(percentiles(Vec::new()).is_none());
    }

    #[test]
    fn latency_saturates_rather_than_underflowing() {
        let s = LatencySample {
            op: Op::SqsSendMessage,
            tenant: 0,
            issued_at: SimInstant::from_micros(10),
            completed_at: SimInstant::from_micros(4),
        };
        assert_eq!(s.latency(), SimDuration::ZERO);
        assert_eq!(s.service(), Service::Sqs);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        SampleLog::new(0);
    }
}

//! A replicated, eventually-consistent key/value map.
//!
//! This is the storage engine under all three service simulators. Each
//! key keeps a short history of writes; each write carries per-replica
//! visibility instants sampled from [`crate::SimWorld::sample_visibility`].
//! A read picks a replica and serves the newest write *visible on that
//! replica*, so a read issued immediately after a write may observe the
//! previous value — exactly the anomaly the paper's consistency property
//! is about. Writes are last-writer-wins, deletes are tombstones, and
//! fully-propagated history is compacted away.

use std::collections::BTreeMap;

use crate::clock::SimInstant;
use crate::world::SimWorld;

#[derive(Clone, Debug)]
struct Write<V> {
    seq: u64,
    /// `visible_at[r]` is when replica `r` starts serving this write.
    visible_at: Vec<SimInstant>,
    /// `None` is a delete tombstone.
    value: Option<V>,
}

#[derive(Clone, Debug)]
struct Cell<V> {
    writes: Vec<Write<V>>,
}

impl<V> Cell<V> {
    /// The newest write visible on `replica` at `now`.
    fn visible(&self, replica: usize, now: SimInstant) -> Option<&Write<V>> {
        self.writes
            .iter()
            .rev()
            .find(|w| w.visible_at.get(replica).map(|t| *t <= now).unwrap_or(true))
    }

    fn latest(&self) -> &Write<V> {
        self.writes
            .last()
            .expect("cells always hold at least one write")
    }

    /// Drops history that every replica has moved past.
    fn compact(&mut self, now: SimInstant) {
        // Find the newest write fully propagated everywhere; anything
        // older can never be served again.
        let mut cut = 0;
        for (i, w) in self.writes.iter().enumerate() {
            if w.visible_at.iter().all(|t| *t <= now) {
                cut = i;
            }
        }
        if cut > 0 {
            self.writes.drain(..cut);
        }
    }

    /// True when the only remaining state is a fully-propagated tombstone.
    fn fully_deleted(&self, now: SimInstant) -> bool {
        self.writes.len() == 1
            && self.writes[0].value.is_none()
            && self.writes[0].visible_at.iter().all(|t| *t <= now)
    }
}

/// An eventually-consistent map from `K` to `V`.
///
/// # Examples
///
/// ```
/// use simworld::{EcMap, SimConfig, SimWorld};
///
/// let world = SimWorld::counting(); // strong consistency: reads are fresh
/// let mut map = EcMap::new();
/// map.write(&world, "key", Some(1));
/// assert_eq!(map.read(&world, &"key"), Some(1));
/// map.write(&world, "key", None); // delete
/// assert_eq!(map.read(&world, &"key"), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EcMap<K: Ord, V> {
    cells: BTreeMap<K, Cell<V>>,
    next_seq: u64,
}

impl<K: Ord + Clone, V: Clone> EcMap<K, V> {
    /// An empty map.
    pub fn new() -> EcMap<K, V> {
        EcMap {
            cells: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Applies a write (`Some`) or delete (`None`) at the current virtual
    /// time, with per-replica propagation sampled from `world`.
    pub fn write(&mut self, world: &SimWorld, key: K, value: Option<V>) {
        self.write_at(world.now(), world.sample_visibility(), key, value);
    }

    /// Applies a write with an explicit propagation schedule: replica `i`
    /// starts serving the write at `visible_at[i]`. This is the
    /// deterministic core of [`EcMap::write`]; tests (notably the
    /// compaction-invariant proptest) use it to inject adversarial
    /// schedules without going through the world RNG.
    pub fn write_at(
        &mut self,
        now: SimInstant,
        visible_at: Vec<SimInstant>,
        key: K,
        value: Option<V>,
    ) {
        self.next_seq += 1;
        let write = Write {
            seq: self.next_seq,
            visible_at,
            value,
        };
        let cell = self
            .cells
            .entry(key)
            .or_insert_with(|| Cell { writes: Vec::new() });
        cell.writes.push(write);
        cell.compact(now);
    }

    /// Serves a read from a randomly chosen replica; may return stale
    /// state under eventual consistency.
    pub fn read(&self, world: &SimWorld, key: &K) -> Option<V> {
        self.read_on(world.sample_read_replica(), world.now(), key)
    }

    /// Serves a read from an explicitly chosen replica at an explicit
    /// instant. A paginated scan that pins one replica per shard uses
    /// this to keep every page of one logical scan on the same view.
    pub fn read_on(&self, replica: usize, now: SimInstant, key: &K) -> Option<V> {
        self.cells
            .get(key)?
            .visible(replica, now)
            .and_then(|w| w.value.clone())
    }

    /// The authoritative newest value, ignoring propagation (what every
    /// replica will eventually serve). Use for invariant checks, not for
    /// simulated client reads.
    pub fn read_latest(&self, key: &K) -> Option<V> {
        self.cells.get(key).and_then(|c| c.latest().value.clone())
    }

    /// Sequence number of the newest write to `key`, if any. Higher means
    /// newer across the whole map.
    pub fn latest_seq(&self, key: &K) -> Option<u64> {
        self.cells.get(key).map(|c| c.latest().seq)
    }

    /// `true` if the newest write to `key` is a value (not a tombstone).
    pub fn contains_latest(&self, key: &K) -> bool {
        self.read_latest(key).is_some()
    }

    /// Number of keys whose newest write is a value.
    pub fn len_latest(&self) -> usize {
        self.cells
            .values()
            .filter(|c| c.latest().value.is_some())
            .count()
    }

    /// Iterates the authoritative live entries in key order.
    pub fn iter_latest(&self) -> impl Iterator<Item = (&K, V)> + '_ {
        self.cells
            .iter()
            .filter_map(|(k, c)| c.latest().value.clone().map(|v| (k, v)))
    }

    /// One replica's view of the key set only — cheap relative to
    /// [`EcMap::visible_entries`] when values are heavyweight, which is
    /// what makes paginated LIST/Query over large stores affordable.
    pub fn visible_keys(&self, world: &SimWorld) -> Vec<K> {
        self.visible_keys_on(world.sample_read_replica(), world.now())
    }

    /// [`EcMap::visible_keys`] on an explicitly chosen replica.
    pub fn visible_keys_on(&self, replica: usize, now: SimInstant) -> Vec<K> {
        self.cells
            .iter()
            .filter_map(|(k, c)| {
                c.visible(replica, now)
                    .and_then(|w| w.value.as_ref())
                    .map(|_| k.clone())
            })
            .collect()
    }

    /// One replica's view of the whole map, as a simulated `LIST` would
    /// see it: a single replica is sampled for the entire scan.
    pub fn visible_entries(&self, world: &SimWorld) -> Vec<(K, V)> {
        self.visible_entries_on(world.sample_read_replica(), world.now())
    }

    /// [`EcMap::visible_entries`] on an explicitly chosen replica.
    pub fn visible_entries_on(&self, replica: usize, now: SimInstant) -> Vec<(K, V)> {
        self.cells
            .iter()
            .filter_map(|(k, c)| {
                c.visible(replica, now)
                    .and_then(|w| w.value.clone())
                    .map(|v| (k.clone(), v))
            })
            .collect()
    }

    /// Up to `limit` live entries visible on `replica`, in key order,
    /// strictly after `after` (`None` starts from the beginning), keeping
    /// only entries `pred` accepts. This is the per-shard building block
    /// of cursor-based pagination: resuming strictly after the last key
    /// served can neither skip nor duplicate a key, no matter what was
    /// inserted or deleted between pages.
    ///
    /// Also returns how many cells the scan examined, so callers can
    /// charge a scan cost proportional to work done, not results
    /// returned.
    pub fn visible_page_on<F>(
        &self,
        replica: usize,
        now: SimInstant,
        after: Option<&K>,
        limit: usize,
        pred: F,
    ) -> (Vec<(K, V)>, u64)
    where
        F: FnMut(&K, &V) -> bool,
    {
        use std::ops::Bound;
        let start = match after {
            Some(k) => Bound::Excluded(k),
            None => Bound::Unbounded,
        };
        self.visible_page_from(replica, now, start, limit, |_| false, pred)
    }

    /// Range-bounded form of [`EcMap::visible_page_on`]: the scan starts
    /// at `start` and stops at the first key `beyond` accepts, without
    /// charging for cells past it. Keys scan in order, so a caller whose
    /// matches form a contiguous key range — e.g. an S3 prefix LIST —
    /// avoids examining (and being billed for) the rest of the shard.
    pub fn visible_page_from<F, G>(
        &self,
        replica: usize,
        now: SimInstant,
        start: std::ops::Bound<&K>,
        limit: usize,
        mut beyond: G,
        mut pred: F,
    ) -> (Vec<(K, V)>, u64)
    where
        F: FnMut(&K, &V) -> bool,
        G: FnMut(&K) -> bool,
    {
        use std::ops::Bound;
        let mut scanned = 0u64;
        let mut out = Vec::new();
        for (k, c) in self.cells.range::<K, _>((start, Bound::Unbounded)) {
            if beyond(k) {
                break;
            }
            scanned += 1;
            let Some(v) = c.visible(replica, now).and_then(|w| w.value.as_ref()) else {
                continue;
            };
            if !pred(k, v) {
                continue;
            }
            out.push((k.clone(), v.clone()));
            if out.len() >= limit {
                break;
            }
        }
        (out, scanned)
    }

    /// Number of cells currently stored, live or tombstoned — the rows
    /// a full scan examines.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Iterates every cell key, live or tombstoned, in key order.
    pub fn cell_keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.cells.keys()
    }

    /// Moves every cell whose key `pred` accepts into a new map,
    /// carrying its full write history — values, tombstones, and
    /// per-replica visibility schedules — untouched, so reads against
    /// the moved cells behave exactly as they would have in place. Both
    /// halves keep the original sequence counter, preserving global
    /// last-writer-wins order across the split. This is the migration
    /// engine under hot-shard splitting in [`crate::ShardMap`].
    pub fn split_off_by<F>(&mut self, mut pred: F) -> EcMap<K, V>
    where
        F: FnMut(&K) -> bool,
    {
        let moving: Vec<K> = self.cells.keys().filter(|k| pred(k)).cloned().collect();
        let mut moved = BTreeMap::new();
        for key in moving {
            if let Some(cell) = self.cells.remove(&key) {
                moved.insert(key, cell);
            }
        }
        EcMap {
            cells: moved,
            next_seq: self.next_seq,
        }
    }

    /// Counts the live entries visible on `replica` that `pred` accepts,
    /// without cloning any value — the engine under `count(*)`. Returns
    /// `(matches, cells examined)`.
    pub fn visible_count_on<F>(&self, replica: usize, now: SimInstant, mut pred: F) -> (u64, u64)
    where
        F: FnMut(&K, &V) -> bool,
    {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        for (k, c) in &self.cells {
            scanned += 1;
            if let Some(v) = c.visible(replica, now).and_then(|w| w.value.as_ref()) {
                if pred(k, v) {
                    matched += 1;
                }
            }
        }
        (matched, scanned)
    }

    /// Drops tombstoned keys whose deletion has reached every replica and
    /// compacts remaining history. Call opportunistically.
    pub fn gc(&mut self, now: SimInstant) {
        self.cells.retain(|_, cell| {
            cell.compact(now);
            !cell.fully_deleted(now)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use crate::latency::LatencyModel;
    use crate::world::{Consistency, SimConfig};

    fn eventual_world(seed: u64, lag_secs: u64) -> SimWorld {
        SimWorld::with_config(SimConfig {
            seed,
            consistency: Consistency::eventual(SimDuration::from_secs(lag_secs)),
            latency: LatencyModel::zero(),
            replicas: 3,
        })
    }

    #[test]
    fn strong_reads_are_always_fresh() {
        let world = SimWorld::counting();
        let mut map = EcMap::new();
        for i in 0..100 {
            map.write(&world, "k", Some(i));
            assert_eq!(map.read(&world, &"k"), Some(i));
        }
    }

    #[test]
    fn eventual_read_can_be_stale_then_settles() {
        let world = eventual_world(11, 60);
        let mut map = EcMap::new();
        map.write(&world, "k", Some("old"));
        world.settle();
        map.write(&world, "k", Some("new"));
        // Immediately after the write some replica still serves "old".
        let mut saw_stale = false;
        for _ in 0..64 {
            if map.read(&world, &"k") == Some("old") {
                saw_stale = true;
                break;
            }
        }
        assert!(
            saw_stale,
            "with 60s lag and 3 replicas a stale read should occur"
        );
        // After the lag bound passes, every replica serves "new".
        world.settle();
        for _ in 0..16 {
            assert_eq!(map.read(&world, &"k"), Some("new"));
        }
    }

    #[test]
    fn last_writer_wins() {
        let world = eventual_world(5, 30);
        let mut map = EcMap::new();
        map.write(&world, "k", Some(1));
        map.write(&world, "k", Some(2)); // concurrent overwrite
        world.settle();
        assert_eq!(map.read(&world, &"k"), Some(2));
        assert_eq!(map.read_latest(&"k"), Some(2));
    }

    #[test]
    fn delete_is_a_tombstone_that_eventually_hides_the_key() {
        let world = eventual_world(9, 60);
        let mut map = EcMap::new();
        map.write(&world, "k", Some(5));
        world.settle();
        map.write(&world, "k", None);
        // Some replica may still serve 5 for a while...
        let _ = map.read(&world, &"k");
        world.settle();
        assert_eq!(map.read(&world, &"k"), None);
        assert!(!map.contains_latest(&"k"));
    }

    #[test]
    fn read_of_missing_key_is_none() {
        let world = SimWorld::counting();
        let map: EcMap<&str, u32> = EcMap::new();
        assert_eq!(map.read(&world, &"nope"), None);
        assert_eq!(map.read_latest(&"nope"), None);
    }

    #[test]
    fn a_new_write_is_visible_somewhere_immediately() {
        // The accepting (primary) replica serves its own write at once.
        let world = eventual_world(13, 3600);
        let mut map = EcMap::new();
        map.write(&world, "k", Some(7));
        let mut seen = false;
        for _ in 0..128 {
            if map.read(&world, &"k") == Some(7) {
                seen = true;
                break;
            }
        }
        assert!(seen);
    }

    #[test]
    fn len_and_iter_track_latest_state() {
        let world = SimWorld::counting();
        let mut map = EcMap::new();
        map.write(&world, "a", Some(1));
        map.write(&world, "b", Some(2));
        map.write(&world, "c", Some(3));
        map.write(&world, "b", None);
        assert_eq!(map.len_latest(), 2);
        let keys: Vec<_> = map.iter_latest().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["a", "c"]);
    }

    #[test]
    fn visible_entries_respect_replica_lag() {
        let world = eventual_world(21, 60);
        let mut map = EcMap::new();
        map.write(&world, "a", Some(1));
        // Before settling, a list may or may not include "a"; afterwards
        // it must.
        world.settle();
        let entries = map.visible_entries(&world);
        assert_eq!(entries, vec![("a", 1)]);
    }

    #[test]
    fn gc_reclaims_fully_deleted_cells() {
        let world = eventual_world(2, 1);
        let mut map = EcMap::new();
        map.write(&world, "a", Some(1));
        map.write(&world, "b", Some(2));
        map.write(&world, "a", None);
        world.settle();
        map.gc(world.now());
        assert_eq!(map.len_latest(), 1);
        // The tombstoned cell is physically gone.
        assert!(map.latest_seq(&"a").is_none());
        assert!(map.latest_seq(&"b").is_some());
    }

    #[test]
    fn compaction_preserves_served_values() {
        let world = eventual_world(4, 1);
        let mut map = EcMap::new();
        for i in 0..50 {
            map.write(&world, "k", Some(i));
            world.settle();
        }
        map.gc(world.now());
        assert_eq!(map.read(&world, &"k"), Some(49));
    }

    #[test]
    fn visible_keys_match_visible_entries() {
        let world = eventual_world(8, 30);
        let mut map = EcMap::new();
        for i in 0..20 {
            map.write(&world, format!("k{i:02}"), Some(i));
        }
        map.write(&world, "k05".to_string(), None); // delete one
                                                    // At any staleness level the key listing agrees with the full
                                                    // entry listing taken under the same conditions after settling.
        world.settle();
        let keys = map.visible_keys(&world);
        let entries: Vec<String> = map
            .visible_entries(&world)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, entries);
        assert_eq!(keys.len(), 19);
        assert!(!keys.contains(&"k05".to_string()));
    }

    #[test]
    fn seq_numbers_increase_monotonically() {
        let world = SimWorld::counting();
        let mut map = EcMap::new();
        map.write(&world, "a", Some(1));
        let s1 = map.latest_seq(&"a").unwrap();
        map.write(&world, "b", Some(2));
        let s2 = map.latest_seq(&"b").unwrap();
        assert!(s2 > s1);
    }
}

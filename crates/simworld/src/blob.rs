//! Cheap, content-addressable byte payloads.
//!
//! The paper's combined dataset is 1.27 GB; materialising that in test
//! memory would be wasteful. [`Blob`] therefore supports two
//! representations: small payloads held inline ([`bytes::Bytes`]) and
//! *synthetic* payloads whose bytes are a deterministic function of a seed,
//! generated on demand. Both support length, ranged slicing, chunked
//! iteration and MD5 — which is all the simulated services need — so
//! gigabyte-scale objects cost a few machine words.

use std::fmt;
use std::ops::Range;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::md5::{Md5, Md5Digest};

/// How many bytes [`Blob::chunks`] yields per step.
pub const CHUNK: usize = 8 * 1024;

#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
enum Repr {
    Inline(#[serde(with = "serde_bytes_compat")] Bytes),
    /// `len` pseudo-random bytes; byte `i` of the stream is
    /// `synthetic_byte(seed, start + i)`.
    Synthetic {
        seed: u64,
        start: u64,
        len: u64,
    },
}

/// A byte payload that may be inline or synthetically generated.
///
/// # Examples
///
/// ```
/// use simworld::Blob;
///
/// let small = Blob::from_bytes("hello".as_bytes().to_vec());
/// assert_eq!(small.len(), 5);
///
/// // A 100 MB object that occupies a few words of memory:
/// let big = Blob::synthetic(42, 100 * 1024 * 1024);
/// assert_eq!(big.len(), 100 * 1024 * 1024);
/// let _etag = big.md5(); // streams without materialising
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Blob {
    repr: Repr,
}

impl Blob {
    /// Creates an empty blob.
    pub fn empty() -> Blob {
        Blob::from_bytes(Vec::new())
    }

    /// Wraps owned bytes.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Blob {
        Blob {
            repr: Repr::Inline(bytes.into()),
        }
    }

    /// Creates a deterministic pseudo-random blob of `len` bytes.
    ///
    /// Two blobs with the same `seed` and `len` have identical content.
    pub fn synthetic(seed: u64, len: u64) -> Blob {
        Blob {
            repr: Repr::Synthetic {
                seed,
                start: 0,
                len,
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match &self.repr {
            Repr::Inline(b) => b.len() as u64,
            Repr::Synthetic { len, .. } => *len,
        }
    }

    /// `true` when the blob holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range of the blob, cheaply.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: Range<u64>) -> Blob {
        assert!(range.start <= range.end, "inverted range {range:?}");
        assert!(
            range.end <= self.len(),
            "range {range:?} out of bounds for len {}",
            self.len()
        );
        match &self.repr {
            Repr::Inline(b) => Blob::from_bytes(b.slice(range.start as usize..range.end as usize)),
            Repr::Synthetic { seed, start, .. } => Blob {
                repr: Repr::Synthetic {
                    seed: *seed,
                    start: start + range.start,
                    len: range.end - range.start,
                },
            },
        }
    }

    /// Materialises the blob into contiguous bytes.
    ///
    /// Intended for small payloads (metadata, provenance records, message
    /// bodies); synthetic blobs are generated in full, so avoid calling
    /// this on multi-gigabyte blobs.
    pub fn to_bytes(&self) -> Bytes {
        match &self.repr {
            Repr::Inline(b) => b.clone(),
            Repr::Synthetic { .. } => {
                let mut out = Vec::with_capacity(self.len() as usize);
                for chunk in self.chunks() {
                    out.extend_from_slice(&chunk);
                }
                Bytes::from(out)
            }
        }
    }

    /// Iterates the content in chunks of at most [`CHUNK`] bytes without
    /// materialising the whole payload.
    pub fn chunks(&self) -> Chunks<'_> {
        Chunks {
            blob: self,
            offset: 0,
        }
    }

    /// Streaming MD5 of the content.
    pub fn md5(&self) -> Md5Digest {
        let mut h = Md5::new();
        for chunk in self.chunks() {
            h.update(&chunk);
        }
        h.finalize()
    }

    /// MD5 of the content followed by `suffix` — the paper's
    /// `MD5(data ‖ nonce)` consistency token.
    pub fn md5_with_suffix(&self, suffix: &[u8]) -> Md5Digest {
        let mut h = Md5::new();
        for chunk in self.chunks() {
            h.update(&chunk);
        }
        h.update(suffix);
        h.finalize()
    }
}

impl Default for Blob {
    fn default() -> Self {
        Blob::empty()
    }
}

impl fmt::Debug for Blob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Inline(b) if b.len() <= 32 => write!(f, "Blob::inline({b:?})"),
            Repr::Inline(b) => write!(f, "Blob::inline(len={})", b.len()),
            Repr::Synthetic { seed, start, len } => {
                write!(f, "Blob::synthetic(seed={seed}, start={start}, len={len})")
            }
        }
    }
}

impl From<Vec<u8>> for Blob {
    fn from(v: Vec<u8>) -> Blob {
        Blob::from_bytes(v)
    }
}

impl From<&str> for Blob {
    fn from(s: &str) -> Blob {
        Blob::from_bytes(s.as_bytes().to_vec())
    }
}

impl From<String> for Blob {
    fn from(s: String) -> Blob {
        Blob::from_bytes(s.into_bytes())
    }
}

/// Iterator over a blob's content in [`CHUNK`]-byte steps.
///
/// Produced by [`Blob::chunks`].
#[derive(Debug)]
pub struct Chunks<'a> {
    blob: &'a Blob,
    offset: u64,
}

impl Iterator for Chunks<'_> {
    type Item = Bytes;

    fn next(&mut self) -> Option<Bytes> {
        let remaining = self.blob.len() - self.offset;
        if remaining == 0 {
            return None;
        }
        let take = remaining.min(CHUNK as u64);
        let out = match &self.blob.repr {
            Repr::Inline(b) => b.slice(self.offset as usize..(self.offset + take) as usize),
            Repr::Synthetic { seed, start, .. } => {
                let mut buf = Vec::with_capacity(take as usize);
                let abs = start + self.offset;
                for i in 0..take {
                    buf.push(synthetic_byte(*seed, abs + i));
                }
                Bytes::from(buf)
            }
        };
        self.offset += take;
        Some(out)
    }
}

/// Byte `index` of the synthetic stream for `seed`.
///
/// SplitMix64 over the 8-byte block index, so any byte is addressable in
/// O(1) — which is what makes `slice` cheap.
fn synthetic_byte(seed: u64, index: u64) -> u8 {
    let block = index / 8;
    let mut state = seed ^ block.wrapping_mul(0x9e3779b97f4a7c15);
    let word = crate::hash::splitmix64(&mut state);
    word.to_le_bytes()[(index % 8) as usize]
}

// Only reachable through the `#[serde(with = ...)]` attribute, which the
// vendored no-op serde derive leaves inert — hence dead to rustc.
#[allow(dead_code)]
mod serde_bytes_compat {
    //! `bytes::Bytes` serde support without enabling the `serde` feature of
    //! the `bytes` crate.
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_round_trip() {
        let b = Blob::from_bytes(b"hello world".to_vec());
        assert_eq!(b.len(), 11);
        assert!(!b.is_empty());
        assert_eq!(&b.to_bytes()[..], b"hello world");
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = Blob::synthetic(7, 1000);
        let b = Blob::synthetic(7, 1000);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.md5(), b.md5());
        let c = Blob::synthetic(8, 1000);
        assert_ne!(a.md5(), c.md5());
    }

    #[test]
    fn synthetic_slice_matches_materialised_slice() {
        let blob = Blob::synthetic(99, 10_000);
        let all = blob.to_bytes();
        for range in [
            0..0u64,
            0..1,
            100..200,
            9_999..10_000,
            0..10_000,
            4_095..4_097,
        ] {
            let sliced = blob.slice(range.clone()).to_bytes();
            assert_eq!(&sliced[..], &all[range.start as usize..range.end as usize]);
        }
    }

    #[test]
    fn nested_slices_compose() {
        let blob = Blob::synthetic(3, 1_000);
        let outer = blob.slice(100..900);
        let inner = outer.slice(50..150);
        assert_eq!(inner.to_bytes(), blob.slice(150..250).to_bytes());
    }

    #[test]
    fn slice_of_inline_matches() {
        let blob = Blob::from_bytes((0u8..=255).collect::<Vec<_>>());
        assert_eq!(&blob.slice(10..13).to_bytes()[..], &[10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Blob::from_bytes(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn md5_streams_equal_oneshot() {
        let blob = Blob::synthetic(1, 100_000);
        let expected = Md5::digest(&blob.to_bytes());
        assert_eq!(blob.md5(), expected);
    }

    #[test]
    fn md5_with_suffix_matches_concat() {
        let blob = Blob::from_bytes(b"data".to_vec());
        let expected = Md5::digest(b"data42");
        assert_eq!(blob.md5_with_suffix(b"42"), expected);
    }

    #[test]
    fn chunks_cover_exactly_once() {
        let blob = Blob::synthetic(5, (CHUNK * 2 + 17) as u64);
        let total: u64 = blob.chunks().map(|c| c.len() as u64).sum();
        assert_eq!(total, blob.len());
        let glued: Vec<u8> = blob.chunks().flat_map(|c| c.to_vec()).collect();
        assert_eq!(Bytes::from(glued), blob.to_bytes());
    }

    #[test]
    fn empty_blob_behaves() {
        let b = Blob::empty();
        assert!(b.is_empty());
        assert_eq!(b.chunks().count(), 0);
        assert_eq!(b.md5().to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Blob::empty()).is_empty());
        assert!(format!("{:?}", Blob::synthetic(1, 5)).contains("seed=1"));
    }
}

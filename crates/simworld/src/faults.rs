//! Crash-point fault injection.
//!
//! The paper's read-correctness argument is all about what happens when a
//! client "crashes after storing the provenance ... but before storing the
//! object" (§4.2) or when the commit daemon dies mid-replay (§4.3). To
//! test those arguments mechanically, every protocol in
//! `provenance-cloud` names its step boundaries as [`CrashSite`]s and
//! calls [`crate::SimWorld::crash_point`] at each one. A test arms a site
//! through [`FaultPlan`]; the k-th visit to that site then returns
//! [`Crashed`], which the protocol propagates as if the process had died.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A named step boundary inside a storage protocol.
///
/// Sites are plain static labels so that `simworld` does not have to know
/// about the protocols defined in higher layers.
///
/// # Examples
///
/// ```
/// use simworld::CrashSite;
///
/// const AFTER_PROV: CrashSite = CrashSite::new("arch2.after_simpledb_put");
/// assert_eq!(AFTER_PROV.name(), "arch2.after_simpledb_put");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CrashSite(&'static str);

impl CrashSite {
    /// Creates a site label.
    pub const fn new(name: &'static str) -> CrashSite {
        CrashSite(name)
    }

    /// The label text.
    pub const fn name(self) -> &'static str {
        self.0
    }
}

impl fmt::Display for CrashSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The error returned when an armed crash site fires.
///
/// Protocol code must treat this as process death: unwind immediately,
/// leave all remote state exactly as it is.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Crashed {
    /// The site that fired.
    pub site: CrashSite,
}

impl fmt::Display for Crashed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated crash at {}", self.site)
    }
}

impl Error for Crashed {}

/// Which sites are armed, and how many visits each should survive first.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// site -> (remaining visits before firing, already fired?)
    armed: HashMap<CrashSite, Armed>,
    /// Log of sites visited, for coverage assertions in tests.
    visited: Vec<CrashSite>,
    record_visits: bool,
}

#[derive(Debug)]
struct Armed {
    skip_visits: u64,
    fired: bool,
}

impl FaultPlan {
    /// A plan with nothing armed.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `site` to fire on its first visit.
    pub fn arm(&mut self, site: CrashSite) {
        self.arm_after(site, 0);
    }

    /// Arms `site` to fire on visit number `skip_visits + 1`.
    pub fn arm_after(&mut self, site: CrashSite, skip_visits: u64) {
        self.armed.insert(
            site,
            Armed {
                skip_visits,
                fired: false,
            },
        );
    }

    /// Disarms `site`; visits to it succeed again.
    pub fn disarm(&mut self, site: CrashSite) {
        self.armed.remove(&site);
    }

    /// Starts recording every visited site (off by default).
    pub fn record_visits(&mut self, on: bool) {
        self.record_visits = on;
        if !on {
            self.visited.clear();
        }
    }

    /// The sites visited since recording was enabled, in order.
    pub fn visits(&self) -> &[CrashSite] {
        &self.visited
    }

    /// Called by the world at each step boundary. Returns `Err(Crashed)`
    /// exactly once per armed site.
    pub fn check(&mut self, site: CrashSite) -> Result<(), Crashed> {
        if self.record_visits {
            self.visited.push(site);
        }
        if let Some(armed) = self.armed.get_mut(&site) {
            if armed.fired {
                return Ok(());
            }
            if armed.skip_visits == 0 {
                armed.fired = true;
                return Err(Crashed { site });
            }
            armed.skip_visits -= 1;
        }
        Ok(())
    }

    /// `true` if `site` was armed and has fired.
    pub fn has_fired(&self, site: CrashSite) -> bool {
        self.armed.get(&site).map(|a| a.fired).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITE_A: CrashSite = CrashSite::new("test.a");
    const SITE_B: CrashSite = CrashSite::new("test.b");

    #[test]
    fn unarmed_sites_pass() {
        let mut plan = FaultPlan::new();
        assert!(plan.check(SITE_A).is_ok());
        assert!(plan.check(SITE_A).is_ok());
    }

    #[test]
    fn armed_site_fires_once() {
        let mut plan = FaultPlan::new();
        plan.arm(SITE_A);
        let err = plan.check(SITE_A).unwrap_err();
        assert_eq!(err.site, SITE_A);
        assert!(plan.has_fired(SITE_A));
        // The process restarted; the same site passes on the next life.
        assert!(plan.check(SITE_A).is_ok());
    }

    #[test]
    fn arm_after_skips_visits() {
        let mut plan = FaultPlan::new();
        plan.arm_after(SITE_A, 2);
        assert!(plan.check(SITE_A).is_ok());
        assert!(plan.check(SITE_A).is_ok());
        assert!(plan.check(SITE_A).is_err());
    }

    #[test]
    fn sites_are_independent() {
        let mut plan = FaultPlan::new();
        plan.arm(SITE_B);
        assert!(plan.check(SITE_A).is_ok());
        assert!(plan.check(SITE_B).is_err());
    }

    #[test]
    fn disarm_cancels() {
        let mut plan = FaultPlan::new();
        plan.arm(SITE_A);
        plan.disarm(SITE_A);
        assert!(plan.check(SITE_A).is_ok());
    }

    #[test]
    fn visit_recording_for_coverage() {
        let mut plan = FaultPlan::new();
        plan.record_visits(true);
        let _ = plan.check(SITE_A);
        let _ = plan.check(SITE_B);
        let _ = plan.check(SITE_A);
        assert_eq!(plan.visits(), &[SITE_A, SITE_B, SITE_A]);
        plan.record_visits(false);
        assert!(plan.visits().is_empty());
    }

    #[test]
    fn crashed_error_displays_site() {
        let err = Crashed { site: SITE_A };
        assert_eq!(err.to_string(), "simulated crash at test.a");
    }
}

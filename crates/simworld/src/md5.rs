//! A from-scratch MD5 implementation (RFC 1321).
//!
//! The paper's second and third architectures detect provenance/data
//! inconsistency by comparing an `MD5(data ‖ nonce)` attribute stored in
//! SimpleDB against a hash recomputed from the S3 object. No hash crate is
//! on the project's allowed dependency list, so MD5 is implemented here and
//! validated against the RFC 1321 test vectors.
//!
//! MD5 is used strictly as a checksum for change detection, exactly as in
//! the paper — not for security.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-round shift amounts, from RFC 1321.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `floor(2^32 * abs(sin(i+1)))`, from RFC 1321.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// A 128-bit MD5 digest.
///
/// # Examples
///
/// ```
/// use simworld::Md5;
///
/// let digest = Md5::digest(b"abc");
/// assert_eq!(digest.to_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Md5Digest(pub [u8; 16]);

impl Md5Digest {
    /// Renders the digest as 32 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(32);
        for b in self.0 {
            out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        out
    }

    /// Parses 32 hex characters back into a digest.
    ///
    /// Returns `None` if the input is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<Md5Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Md5Digest(out))
    }
}

impl fmt::Display for Md5Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming MD5 hasher.
///
/// # Examples
///
/// ```
/// use simworld::Md5;
///
/// let mut hasher = Md5::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), Md5::digest(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a hasher in the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// One-shot digest of a byte slice.
    pub fn digest(data: &[u8]) -> Md5Digest {
        let mut h = Md5::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Md5Digest {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
        self.update(&[0x80]);
        // `update` tracked the pad byte in length_bytes, but the final
        // length word was captured beforehand, so that is harmless.
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.length_bytes = bit_len / 8; // irrelevant from here on
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Md5Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            b = b.wrapping_add(rotated);
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seven test vectors from RFC 1321 §A.5.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(Md5::digest(input).to_hex(), expected, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let whole = Md5::digest(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = Md5::digest(b"round trip");
        assert_eq!(Md5Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert_eq!(Md5Digest::from_hex("short"), None);
        assert_eq!(Md5Digest::from_hex(&"g".repeat(32)), None);
        let valid_len_not_hex = "zz".repeat(16);
        assert_eq!(Md5Digest::from_hex(&valid_len_not_hex), None);
    }

    #[test]
    fn display_matches_to_hex() {
        let d = Md5::digest(b"display");
        assert_eq!(format!("{d}"), d.to_hex());
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Md5::digest(b"a"), Md5::digest(b"b"));
        // The nonce-concatenation trick from the paper: same data, distinct
        // nonce must yield distinct digests.
        let mut one = Md5::new();
        one.update(b"data");
        one.update(b"1");
        let mut two = Md5::new();
        two.update(b"data");
        two.update(b"2");
        assert_ne!(one.finalize(), two.finalize());
    }

    #[test]
    fn exact_block_boundary_input() {
        // 64-byte input exercises the "no partial buffer at finalize" path.
        let data = [0xabu8; 64];
        let d = Md5::digest(&data);
        let mut h = Md5::new();
        h.update(&data);
        assert_eq!(h.finalize(), d);
    }
}

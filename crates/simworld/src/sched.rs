//! The event-driven completion scheduler.
//!
//! Serial virtual-time accounting ("advance the clock by each request's
//! latency") cannot express *overlap*: a pipelined client has several
//! requests in flight at once, and the clock must follow the event
//! order of their completions, not the sum of their latencies. The
//! [`Scheduler`] is the substrate for that: a deterministic event queue
//! keyed by [`SimInstant`] and tie-broken by a monotonically increasing
//! sequence number, so two events at the same instant always fire in
//! the order they were scheduled — on every run of the same seed.
//!
//! Two kinds of event live here: **completions** of in-flight requests
//! (scheduled by [`crate::SimWorld`]'s pipelined accounting) and
//! **timers** (scheduled by background daemons such as a group-commit
//! flush daemon). The queue itself does not interpret them; it only
//! guarantees deterministic `(instant, seq)` order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimInstant;
use crate::metering::Op;

/// Handle to a scheduled timer event (see [`crate::SimWorld::schedule_timer`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The scheduler sequence number backing this timer — its tie-break
    /// rank among events at the same instant.
    pub fn seq(self) -> u64 {
        self.0
    }
}

/// What a scheduled event was about.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SchedEvent {
    /// An in-flight request of the given kind completed.
    Completion(Op),
    /// A timer deadline passed.
    Timer,
}

/// One fired event, as recorded in the deterministic event trace
/// (see [`crate::SimWorld::set_event_trace`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FiredEvent {
    /// When the event fired.
    pub at: SimInstant,
    /// Its scheduler sequence number (global issue order).
    pub seq: u64,
    /// What it was.
    pub event: SchedEvent,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Entry {
    at: SimInstant,
    seq: u64,
    event: SchedEvent,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue: min-ordered by `(instant, seq)`.
///
/// # Examples
///
/// ```
/// use simworld::{SchedEvent, Scheduler, SimInstant};
///
/// let mut sched = Scheduler::new();
/// let t = SimInstant::from_micros(10);
/// sched.schedule(t, SchedEvent::Timer);
/// sched.schedule(t, SchedEvent::Timer); // same instant: seq breaks the tie
/// let first = sched.pop_due(t).unwrap();
/// let second = sched.pop_due(t).unwrap();
/// assert!(first.seq < second.seq);
/// assert!(sched.pop_due(t).is_none());
/// ```
#[derive(Debug, Default)]
pub struct Scheduler {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
}

impl Scheduler {
    /// An empty queue.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Schedules `event` at `at`; returns its sequence number. Sequence
    /// numbers increase in call order and break ties between events
    /// scheduled for the same instant.
    pub fn schedule(&mut self, at: SimInstant, event: SchedEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        seq
    }

    /// Cancels the event with sequence number `seq` (lazily: the heap
    /// entry is skipped when it surfaces).
    pub fn cancel(&mut self, seq: u64) {
        if seq < self.next_seq {
            self.cancelled.insert(seq);
        }
    }

    /// The instant of the earliest pending event, if any.
    pub fn next_at(&mut self) -> Option<SimInstant> {
        self.skim_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest event with `at <= now`, in `(at, seq)` order.
    pub fn pop_due(&mut self, now: SimInstant) -> Option<FiredEvent> {
        self.skim_cancelled();
        match self.heap.peek() {
            Some(Reverse(e)) if e.at <= now => {
                let Reverse(e) = self.heap.pop().expect("peeked above");
                Some(FiredEvent {
                    at: e.at,
                    seq: e.seq,
                    event: e.event,
                })
            }
            _ => None,
        }
    }

    /// Events still pending. Lazily-cancelled entries are *not*
    /// counted: a caller polling "is the queue idle?" must never spin
    /// on ghosts that will be skipped the moment they surface.
    pub fn len(&self) -> usize {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.seq))
            .count()
    }

    /// `true` when nothing is pending (cancelled entries excluded).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    fn t(us: u64) -> SimInstant {
        SimInstant::from_micros(us)
    }

    #[test]
    fn pops_in_instant_order() {
        let mut s = Scheduler::new();
        s.schedule(t(30), SchedEvent::Timer);
        s.schedule(t(10), SchedEvent::Timer);
        s.schedule(t(20), SchedEvent::Timer);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop_due(t(100)))
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_instants_fire_in_schedule_order() {
        let mut s = Scheduler::new();
        let a = s.schedule(t(5), SchedEvent::Completion(Op::S3Put));
        let b = s.schedule(t(5), SchedEvent::Completion(Op::S3Get));
        let first = s.pop_due(t(5)).unwrap();
        let second = s.pop_due(t(5)).unwrap();
        assert_eq!((first.seq, second.seq), (a, b));
        assert_eq!(first.event, SchedEvent::Completion(Op::S3Put));
    }

    #[test]
    fn nothing_due_before_its_instant() {
        let mut s = Scheduler::new();
        s.schedule(t(50), SchedEvent::Timer);
        assert!(s.pop_due(t(49)).is_none());
        assert_eq!(s.next_at(), Some(t(50)));
        assert!(s.pop_due(t(50)).is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut s = Scheduler::new();
        let a = s.schedule(t(1), SchedEvent::Timer);
        s.schedule(t(2), SchedEvent::Timer);
        s.cancel(a);
        let fired = s.pop_due(t(10)).unwrap();
        assert_ne!(fired.seq, a);
        assert!(s.pop_due(t(10)).is_none());
    }

    #[test]
    fn cancel_of_unknown_seq_is_ignored() {
        let mut s = Scheduler::new();
        s.cancel(99);
        s.schedule(t(1), SchedEvent::Timer);
        assert!(s.pop_due(t(1) + SimDuration::ZERO).is_some());
    }

    #[test]
    fn len_and_is_empty_ignore_cancelled_entries() {
        let mut s = Scheduler::new();
        let a = s.schedule(t(1), SchedEvent::Timer);
        let b = s.schedule(t(2), SchedEvent::Timer);
        assert_eq!(s.len(), 2);
        s.cancel(a);
        // The heap still physically holds the cancelled entry (lazy
        // cancellation), but an idle poller must not see it.
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        s.cancel(b);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        // Popping skips both ghosts; emptiness is unchanged.
        assert!(s.pop_due(t(10)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn next_at_skips_cancelled_head() {
        let mut s = Scheduler::new();
        let a = s.schedule(t(1), SchedEvent::Timer);
        s.schedule(t(7), SchedEvent::Timer);
        s.cancel(a);
        assert_eq!(s.next_at(), Some(t(7)));
    }
}

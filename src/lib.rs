//! # pass-cloud — provenance-aware cloud storage
//!
//! Facade crate for the workspace reproducing *Making a Cloud
//! Provenance-Aware* (Muniswamy-Reddy, Macko, Seltzer — TaPP '09).
//!
//! The paper layers a Provenance-Aware Storage System (PASS) on Amazon Web
//! Services and compares three architectures for storing data together
//! with its provenance:
//!
//! 1. **Standalone S3** — provenance rides as S3 object metadata;
//! 2. **S3 + SimpleDB** — data in S3, indexed provenance in SimpleDB;
//! 3. **S3 + SimpleDB + SQS** — a write-ahead log on SQS makes the pair
//!    atomic.
//!
//! This crate re-exports the whole public API so examples and downstream
//! users need a single dependency:
//!
//! * [`simworld`] — deterministic clock/RNG/metering/fault substrate;
//! * [`s3`], [`simpledb`], [`sqs`] — the simulated AWS services;
//! * [`pass`] — the provenance collector;
//! * [`cloud`] — the three architectures, properties, queries (the core);
//! * [`frontend`] — the network serving layer (TCP/Unix sockets, wire
//!   codec, blocking client);
//! * [`workloads`] — Linux-compile / BLAST / Provenance-Challenge traces;
//! * [`costmodel`] — the January 2009 AWS price book.
//!
//! # Examples
//!
//! The serving facade ([`cloud::ServeHandle`]) is the coherent API
//! surface: writes serialize behind one mutex, reads and queries take
//! `&self` so any number of threads (or network connections) can serve
//! concurrently.
//!
//! ```
//! use pass_cloud::cloud::{S3SimpleDbSqs, ServeHandle};
//! use pass_cloud::pass::FileFlush;
//! use pass_cloud::simworld::{Blob, SimWorld};
//!
//! let world = SimWorld::new(42);
//! let store = ServeHandle::new(S3SimpleDbSqs::new(&world, "client-1"));
//!
//! // Persist one file with a provenance record, as PASS would on close().
//! let flush = FileFlush::builder("results/data.csv")
//!     .data(Blob::from("a,b\n1,2\n"))
//!     .record("input", "raw/data.dat:1")
//!     .build();
//! store.record(&flush).unwrap();
//! store.flush().unwrap();
//!
//! let read = store.read("results/data.csv").unwrap();
//! assert!(read.consistent());
//! assert_eq!(store.stats().fingerprint, store.fingerprint());
//! ```

pub use costmodel;
pub use frontend;
pub use pass;
pub use provenance_cloud as cloud;
pub use sim_s3 as s3;
pub use sim_simpledb as simpledb;
pub use sim_sqs as sqs;
pub use simworld;
pub use workloads;
